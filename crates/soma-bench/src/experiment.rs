//! Executes a parsed [`ExperimentSpec`]: one [`Scheduler`] portfolio run
//! per cell, deterministically — the engine behind `soma-bench --bin
//! run` and the `ci_smoke` spec-reproduction gate.
//!
//! A cell's result is **exactly** what the equivalent hand-written
//! driver produces: `Scheduler::new(&cell.net, &cell.hw)
//! .config(spec.config.clone()).seeds(spec.seeds.clone()).run()` — no
//! hidden seed salting, no effort rescaling. A committed `.soma` file
//! plus this function *is* the run configuration: the [`Parallelism`]
//! policy spreads cells across threads but never changes a result (rows
//! are merged in cell order and each seed owns its RNG stream).
//!
//! Progress flows through the same typed [`LabEvent`] stream the
//! ledger-backed orchestrator ([`crate::lab`]) emits — here every cell
//! is `Queued` then `Started`/`Finished` (never `Cached`; this driver
//! consults no ledger), `Finished` always in cell order, which is also
//! what makes the two paths directly comparable in the differential
//! tests.

use std::sync::Mutex;

use soma_search::{Parallelism, Scheduler, SearchConfig, SearchOutcome};
use soma_spec::{ExperimentCell, ExperimentSpec};

use crate::lab::{cell_key, LabEvent};

/// One executed experiment cell.
#[derive(Debug)]
pub struct ExperimentRow {
    /// The resolved cell (scenario id, network, platform).
    pub cell: ExperimentCell,
    /// The search outcome of the cell's seed portfolio.
    pub outcome: SearchOutcome,
}

/// The CSV header shared by the `run` and `lab` binaries (golden files
/// compare their output byte-for-byte).
pub const CSV_HEADER: &str = "scenario,workload,platform,batch,scheme,latency_cycles,energy_pj,\
                              cost,evals,rejected,lgs,flgs,tiles,dram_tensors";

/// Renders one result row pair (`ours_1` stage-1 snapshot + `ours_2`
/// final scheme) per cell, in cell order — the body under
/// [`CSV_HEADER`]. Cached and freshly searched outcomes render
/// identically because ledger persistence is lossless.
pub fn csv_rows(rows: &[ExperimentRow]) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut one =
        |cell: &ExperimentCell, scheme: &str, e: &soma_search::Evaluated, r: &ExperimentRow| {
            let plan =
                soma_core::parse_lfa(&cell.net, &e.encoding.lfa).expect("reported scheme parses");
            let _ = writeln!(
                out,
                "{},{},{},{},{scheme},{},{:.1},{:.6e},{},{},{},{},{},{}",
                cell.id,
                cell.workload,
                cell.platform,
                cell.batch,
                e.report.latency_cycles,
                e.report.energy.total_pj(),
                e.cost,
                r.outcome.evals,
                r.outcome.rejected,
                plan.n_lgs(),
                plan.flgs.len(),
                plan.tiles.len(),
                plan.dram_tensors.len()
            );
        };
    for r in rows {
        one(&r.cell, "ours_1", &r.outcome.stage1, r);
        one(&r.cell, "ours_2", &r.outcome.best, r);
    }
    out
}

/// Runs every cell of the experiment under the spec's [`Parallelism`]
/// policy, emitting [`LabEvent`]s. Deterministic: same spec text, same
/// results — bit-identical across thread counts; only the live
/// `Started` interleaving (and wall-clock) varies.
pub fn run_experiment(
    spec: &ExperimentSpec,
    observer: impl FnMut(&LabEvent) + Send,
) -> Vec<ExperimentRow> {
    run_cells(spec.cells(), &spec.config, &spec.seeds, spec.parallelism, observer)
}

/// In-order `Finished` emitter for the parallel path: completed cells
/// park until every earlier cell has been reported, mirroring the
/// ledger flusher in [`crate::lab`] (minus the ledger).
struct InOrderEvents<'o> {
    observer: &'o mut (dyn FnMut(&LabEvent) + Send),
    next: usize,
    ready: std::collections::BTreeMap<usize, LabEvent>,
}

impl InOrderEvents<'_> {
    fn complete(&mut self, idx: usize, done: LabEvent) {
        self.ready.insert(idx, done);
        while let Some(done) = self.ready.remove(&self.next) {
            self.next += 1;
            (self.observer)(&done);
        }
    }
}

/// Runs an explicit cell list (e.g. an experiment narrowed by the
/// `SOMA_WORKLOAD` filter) under one configuration, seed portfolio and
/// thread policy. Results (and `Finished` events) always arrive in cell
/// order; under [`Parallelism::Sequential`] every event is emitted live
/// from the calling thread.
pub fn run_cells(
    cells: Vec<ExperimentCell>,
    config: &SearchConfig,
    seeds: &[u64],
    parallelism: Parallelism,
    mut observer: impl FnMut(&LabEvent) + Send,
) -> Vec<ExperimentRow> {
    let keys: Vec<String> = cells.iter().map(|c| cell_key(c, config, seeds)).collect();
    for (cell, key) in cells.iter().zip(&keys) {
        observer(&LabEvent::Queued { cell: cell.id.clone(), hash: key.clone() });
    }
    let run_one = |cell: &ExperimentCell, par: Parallelism| {
        Scheduler::new(&cell.net, &cell.hw)
            .config(config.clone())
            .seeds(seeds.iter().copied())
            .parallelism(par)
            .run()
    };
    let finished_event =
        |cell: &ExperimentCell, key: String, outcome: &SearchOutcome| LabEvent::Finished {
            cell: cell.id.clone(),
            hash: key,
            cost: outcome.best.cost,
            latency_cycles: outcome.best.report.latency_cycles,
            evals: outcome.evals,
        };

    if parallelism == Parallelism::Sequential {
        return cells
            .into_iter()
            .zip(keys)
            .map(|(cell, key)| {
                observer(&LabEvent::Started { cell: cell.id.clone() });
                let outcome = run_one(&cell, Parallelism::Sequential);
                observer(&finished_event(&cell, key, &outcome));
                ExperimentRow { cell, outcome }
            })
            .collect();
    }

    let events =
        Mutex::new(InOrderEvents { observer: &mut observer, next: 0, ready: Default::default() });
    let work: Vec<(usize, &ExperimentCell)> = cells.iter().enumerate().collect();
    let outcomes: Vec<SearchOutcome> = parallelism.map_collect(work, |(idx, cell)| {
        {
            let mut state = events.lock().expect("event emitter poisoned");
            (state.observer)(&LabEvent::Started { cell: cell.id.clone() });
        }
        let outcome = run_one(cell, parallelism.nested());
        let done = finished_event(cell, keys[idx].clone(), &outcome);
        events.lock().expect("event emitter poisoned").complete(idx, done);
        outcome
    });
    cells.into_iter().zip(outcomes).map(|(cell, outcome)| ExperimentRow { cell, outcome }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_search::SearchConfig;
    use soma_spec::read_experiment;

    #[test]
    fn spec_run_equals_hand_written_driver() {
        let text = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let rows = run_experiment(&spec, |_| {});
        assert_eq!(rows.len(), 1);

        let net = soma_model::zoo::fig2(1);
        let hw = soma_arch::HardwareConfig::edge();
        let cfg = SearchConfig { effort: 0.01, seed: 7, ..SearchConfig::default() };
        let direct = Scheduler::new(&net, &hw).config(cfg).run();
        let got = &rows[0].outcome;
        assert_eq!(got.best.encoding, direct.best.encoding);
        assert_eq!(got.best.report, direct.best.report);
        assert_eq!(got.best.cost.to_bits(), direct.best.cost.to_bits());
        assert_eq!(got.evals, direct.evals);
    }

    #[test]
    fn sequential_driver_emits_the_lab_event_protocol() {
        let text = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let mut events = Vec::new();
        run_experiment(&spec, |ev| events.push(ev.clone()));
        assert!(matches!(&events[0], LabEvent::Queued { cell, .. } if cell == "fig2@edge/b1"));
        assert!(matches!(&events[1], LabEvent::Started { .. }));
        assert!(matches!(&events[2], LabEvent::Finished { evals, .. } if *evals > 0));
        assert_eq!(events.len(), 3, "no Cached events without a ledger");
    }

    #[test]
    fn csv_rows_render_both_schemes_per_cell() {
        let text = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let rows = run_experiment(&spec, |_| {});
        let csv = csv_rows(&rows);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("fig2@edge/b1,fig2,edge-16tops,1,ours_1,"));
        assert!(csv.contains(",ours_2,"));
        assert_eq!(CSV_HEADER.split(',').count(), csv.lines().next().unwrap().split(',').count());
    }
}
