//! The experiment orchestrator behind `soma-bench --bin lab`: parallel,
//! resumable, cache-aware execution of an [`ExperimentSpec`].
//!
//! An experiment expands into (scenario × config × seed-portfolio)
//! **cells**; [`run_lab`] executes them as a work queue:
//!
//! * **Cache-aware** — every cell is keyed by a content hash of
//!   (scenario id, resolved hardware, [`SearchConfig`], seed portfolio,
//!   [`soma_search::ENGINE_VERSION`]); cells whose key already sits in
//!   the on-disk **run ledger** are served from it without any search
//!   work ([`LabEvent::Cached`]).
//! * **Resumable** — each completed cell is appended to the ledger (one
//!   JSON line per cell) *in cell order* as soon as all earlier cells
//!   have been written, so an interrupted run leaves a valid prefix and
//!   a rerun picks up exactly where it stopped. A partially written
//!   trailing line (a kill mid-append) is detected and dropped on load.
//!   The final ledger of an interrupted-then-resumed run is
//!   byte-identical to an uninterrupted one.
//! * **Parallel with deterministic merge** — cell searches that miss the
//!   ledger fan out across the threads selected by the spec's
//!   [`Parallelism`] policy (the `threads` directive / `--threads`
//!   flag). Results are merged, the ledger written and
//!   [`LabEvent::Cached`]/[`LabEvent::Finished`] observed in cell order
//!   regardless of completion order, so ledger bytes and rows are
//!   bit-identical across thread counts — and to the sequential
//!   [`run_experiment`](crate::run_experiment).

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use soma_search::{Scheduler, SearchOutcome};
use soma_spec::fault::{self, Fault, FaultPlan};
use soma_spec::ExperimentSpec;

use crate::ExperimentRow;

// The ledger itself lives in `soma_spec::ledger` (it is shared with the
// `soma-serve` daemon's result cache); re-exported here because the lab
// orchestrator is its primary producer and historical home.
pub use soma_spec::ledger::{cell_key, Ledger, LedgerRow, LEDGER_VERSION};

// The event vocabulary moved to `soma-obs` (observers should not have
// to depend on the orchestrator to understand its progress stream);
// re-exported here because the lab is its producer and historical home.
pub use soma_obs::LabEvent;

/// What [`run_lab`] reports back.
#[derive(Debug)]
pub struct LabSummary {
    /// One row per cell, in spec cell order (cached and fresh alike).
    /// On a [`stopped`](Self::stopped) run, only the cells whose
    /// outcome is known — ledger hits plus flushed misses.
    pub rows: Vec<ExperimentRow>,
    /// Cells served from the ledger.
    pub hits: usize,
    /// Cells that ran a search (and were appended to the ledger).
    pub misses: usize,
    /// Cells whose search panicked ([`LabEvent::Failed`]): isolated,
    /// ledger-skipped, retried by the next run of the same spec.
    pub failed: usize,
    /// Whether a [`run_lab_until`] stop flag cut the run short. The
    /// ledger still holds a valid in-cell-order prefix; rerunning the
    /// same spec resumes from it.
    pub stopped: bool,
    /// What loading the ledger found and repaired (quarantined rows,
    /// torn tail, shadowed duplicates) — surfaced so the binary can
    /// warn.
    pub health: soma_spec::LedgerHealth,
}

/// In-order ledger flusher: completed cells park in `ready` until every
/// earlier miss has been written, so the ledger is an in-cell-order
/// prefix at every instant (the resume guarantee) no matter which order
/// the pool finishes in. The observer lives here too: `Started` events
/// are forwarded live as jobs begin, and each cell's `Finished` event is
/// emitted the moment its row lands in the ledger — live progress, in
/// flush (cell) order. Worker threads report through the shared mutex
/// around this state, which is why the observer must be `Send`.
/// How one miss ended: a row to append, or a panic to report.
enum CellDone {
    /// The search completed; append the row, then emit the event.
    Row(Box<LedgerRow>, LabEvent),
    /// The search panicked; emit [`LabEvent::Failed`] and advance
    /// without writing — later cells still flush, the failed cell's
    /// slot in the ledger simply stays empty for the next run to fill.
    Failed(LabEvent),
}

struct InOrderFlush<'l, 'o> {
    ledger: &'l mut Ledger,
    observer: &'o mut (dyn FnMut(&LabEvent) + Send),
    /// Position into the miss list of the next cell to resolve.
    next: usize,
    ready: BTreeMap<usize, CellDone>,
    /// Rows actually appended.
    appended: usize,
    /// Cells that panicked.
    failed: usize,
    err: Option<io::Error>,
}

impl InOrderFlush<'_, '_> {
    fn complete(&mut self, miss_pos: usize, done: CellDone) {
        self.ready.insert(miss_pos, done);
        while let Some(done) = self.ready.remove(&self.next) {
            self.next += 1;
            match done {
                CellDone::Failed(ev) => {
                    self.failed += 1;
                    (self.observer)(&ev);
                }
                // `Finished` asserts "this row landed in the ledger" —
                // once an append has failed, later rows are neither
                // written nor reported finished (run_lab surfaces the
                // error instead).
                CellDone::Row(_, _) if self.err.is_some() => {}
                CellDone::Row(row, ev) => match self.ledger.append(*row) {
                    Ok(()) => {
                        self.appended += 1;
                        (self.observer)(&ev);
                    }
                    Err(e) => self.err = Some(e),
                },
            }
        }
    }
}

/// Executes an experiment against the ledger at `ledger_path`.
///
/// Ledger-hit cells are served without search work; misses fan out
/// across the threads chosen by `spec.parallelism` and append to the
/// ledger in cell order. The observer sees [`LabEvent`]s in the order
/// documented on the type. The returned rows and ledger bytes are
/// bit-identical across every [`Parallelism`] policy — and to a
/// sequential [`run_experiment`](crate::run_experiment) of the same
/// spec.
///
/// # Errors
///
/// I/O errors loading or appending the ledger, or corrupt non-trailing
/// ledger lines.
pub fn run_lab(
    spec: &ExperimentSpec,
    ledger_path: &Path,
    observer: impl FnMut(&LabEvent) + Send,
) -> io::Result<LabSummary> {
    run_lab_until(spec, ledger_path, &AtomicBool::new(false), observer)
}

/// [`run_lab`] with a cooperative stop flag — the graceful-shutdown
/// entry point behind the `lab` binary's SIGINT handling.
///
/// The flag is checked **between cells**: once it reads `true`, cells
/// whose search has not started are skipped, in-flight searches finish,
/// and — because the ledger is written strictly in cell order — every
/// row flushed before the stop still forms a valid in-order prefix. A
/// rerun of the same spec resumes from exactly that prefix and produces
/// a final ledger byte-identical to an uninterrupted run.
///
/// When the run was stopped early, [`LabSummary::stopped`] is `true`
/// and [`LabSummary::rows`] holds only the cells whose outcome is
/// known (ledger hits plus flushed misses) — later cells are simply
/// absent, never fabricated.
///
/// # Errors
///
/// I/O errors loading or appending the ledger, or corrupt non-trailing
/// ledger lines.
pub fn run_lab_until(
    spec: &ExperimentSpec,
    ledger_path: &Path,
    stop: &AtomicBool,
    observer: impl FnMut(&LabEvent) + Send,
) -> io::Result<LabSummary> {
    run_lab_chaos(spec, ledger_path, stop, None, observer)
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// [`run_lab_until`] with a deterministic [`FaultPlan`] threaded behind
/// the ledger writer ([`fault::site::LEDGER_APPEND`]) and the cell
/// runner ([`fault::site::LAB_CELL`]) — the chaos-suite entry point.
/// Production callers pass `None` (what [`run_lab`] and
/// [`run_lab_until`] do).
///
/// A cell whose search panics — injected or real — is isolated by
/// `catch_unwind`: it becomes a [`LabEvent::Failed`] and a skipped
/// ledger slot, every other cell proceeds, and
/// [`LabSummary::failed`] counts it so the `lab` binary can exit with
/// a partial-failure code. A rerun of the same spec retries exactly the
/// failed cells (their keys still miss the ledger).
///
/// # Errors
///
/// I/O errors loading or appending the ledger. Corrupt ledger rows are
/// *not* errors: load quarantines them (see [`Ledger::load`]).
pub fn run_lab_chaos(
    spec: &ExperimentSpec,
    ledger_path: &Path,
    stop: &AtomicBool,
    faults: Option<Arc<FaultPlan>>,
    mut observer: impl FnMut(&LabEvent) + Send,
) -> io::Result<LabSummary> {
    let cells = spec.cells();
    let keys: Vec<String> = cells.iter().map(|c| cell_key(c, &spec.config, &spec.seeds)).collect();
    // Probe read-only first: a pure replay (every cell already done —
    // the `--require-hits` gate, a `watch`ed campaign being re-checked)
    // must never write, truncate or quarantine anything, even when the
    // ledger is damaged or another process is mid-append.
    let mut ledger = Ledger::load_readonly(ledger_path)?;
    let health = ledger.health();

    for (cell, key) in cells.iter().zip(&keys) {
        observer(&LabEvent::Queued { cell: cell.id.clone(), hash: key.clone() });
    }

    let mut outcomes: Vec<Option<SearchOutcome>> = vec![None; cells.len()];
    let mut misses: Vec<usize> = Vec::new();
    // Within-run dedup: a spec can name the same cell twice (an explicit
    // scenario that the workload grid also produces). Searching it twice
    // would append two identical rows — which an interrupted rerun could
    // never reproduce (both copies would hit the one surviving row), so
    // one key searches once and owns one row; later duplicates are
    // served from the first occurrence, like any other cache hit.
    let mut duplicates: Vec<(usize, usize)> = Vec::new();
    let mut first_claim: HashMap<&str, usize> = HashMap::new();
    for (i, (cell, key)) in cells.iter().zip(&keys).enumerate() {
        if let Some(row) = ledger.lookup(key) {
            // A lazy row whose payload is corrupt decodes to `None`
            // and simply counts as a miss (the cell re-searches).
            outcomes[i] = row.outcome().cloned();
            observer(&LabEvent::Cached { cell: cell.id.clone(), hash: key.clone() });
        } else if let Some(&first) = first_claim.get(key.as_str()) {
            duplicates.push((i, first));
            observer(&LabEvent::Cached { cell: cell.id.clone(), hash: key.clone() });
        } else {
            first_claim.insert(key, i);
            misses.push(i);
        }
    }
    let hits = cells.len() - misses.len();

    if !misses.is_empty() {
        // There is work to append, so this run is a writer: reload in
        // repairing mode (fixing any damage the probe tolerated)
        // before the first append.
        ledger = Ledger::load(ledger_path)?;
        if let Some(plan) = &faults {
            ledger.inject_faults(Arc::clone(plan));
        }
    }

    // Fan the misses out. Events flow live through the shared flush
    // state — `Started` as each job begins (execution order), `Finished`
    // as each row lands in the ledger (cell order) — and ledger rows are
    // written through the same in-order writer, so an interrupted run
    // keeps every finished prefix cell.
    let flush = Mutex::new(InOrderFlush {
        ledger: &mut ledger,
        observer: &mut observer,
        next: 0,
        ready: BTreeMap::new(),
        appended: 0,
        failed: 0,
        err: None,
    });
    let work: Vec<(usize, usize)> = misses.iter().copied().enumerate().collect();
    let finished: Vec<Option<(usize, usize, SearchOutcome)>> =
        spec.parallelism.map_collect(work, |(miss_pos, cell_idx)| {
            // The graceful-stop point: a cell whose search has not
            // begun when the flag flips is skipped entirely. It never
            // reaches the flusher, so no later cell can be written
            // either (the flusher only advances through a contiguous
            // prefix) — exactly the interrupted-run ledger shape the
            // resume path already handles.
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let cell = &cells[cell_idx];
            let key = &keys[cell_idx];
            {
                let mut state = flush.lock().expect("ledger flusher poisoned");
                (state.observer)(&LabEvent::Started { cell: cell.id.clone() });
            }
            // Panic isolation: one poisoned cell (injected or real)
            // becomes a typed `Failed` event instead of taking the
            // whole campaign down with it.
            let searched = catch_unwind(AssertUnwindSafe(|| {
                match faults.as_ref().and_then(|p| p.next(fault::site::LAB_CELL)) {
                    Some(Fault::Panic) => panic!("injected fault: cell panic"),
                    Some(Fault::Slow { millis }) => {
                        std::thread::sleep(Duration::from_millis(millis));
                    }
                    _ => {}
                }
                Scheduler::new(&cell.net, &cell.hw)
                    .config(spec.config.clone())
                    .seeds(spec.seeds.iter().copied())
                    .parallelism(spec.parallelism.nested())
                    .run()
            }));
            let outcome = match searched {
                Ok(outcome) => outcome,
                Err(payload) => {
                    let ev = LabEvent::Failed {
                        cell: cell.id.clone(),
                        hash: key.clone(),
                        error: panic_message(payload.as_ref()),
                    };
                    flush
                        .lock()
                        .expect("ledger flusher poisoned")
                        .complete(miss_pos, CellDone::Failed(ev));
                    return None;
                }
            };
            let done = LabEvent::Finished {
                cell: cell.id.clone(),
                hash: key.clone(),
                cost: outcome.best.cost,
                latency_cycles: outcome.best.report.latency_cycles,
                evals: outcome.evals,
            };
            let row = Box::new(LedgerRow::new(cell, key, outcome.clone()));
            flush
                .lock()
                .expect("ledger flusher poisoned")
                .complete(miss_pos, CellDone::Row(row, done));
            Some((miss_pos, cell_idx, outcome))
        });

    let state = flush.into_inner().expect("ledger flusher poisoned");
    if let Some(e) = state.err {
        return Err(e);
    }
    // A shortfall in resolved misses can only come from a stop request
    // (every started search completes, flushes or fails); the converse
    // need not hold — a flag raised after the last cell changes nothing.
    let flushed = state.next;
    let failed = state.failed;
    let appended = state.appended;
    let stopped = flushed < misses.len();
    if appended > 0 {
        // Refresh the index sidecar so the next load of a binary
        // ledger is O(cells-missing), not a full-shard scan.
        ledger.sync_index()?;
    }

    for item in finished.into_iter().flatten() {
        let (miss_pos, cell_idx, outcome) = item;
        // A search that completed but whose row never reached the
        // ledger (an earlier cell was skipped) is discarded: reporting
        // it would claim a result the ledger cannot replay.
        if miss_pos < flushed {
            outcomes[cell_idx] = Some(outcome);
        }
    }
    for (dup, first) in duplicates {
        outcomes[dup] = outcomes[first].clone();
    }

    let rows = cells
        .into_iter()
        .zip(outcomes)
        .filter_map(|(cell, outcome)| {
            debug_assert!(
                outcome.is_some() || stopped || failed > 0,
                "a completed run resolves every cell (hit, flushed miss, or failure)"
            );
            outcome.map(|outcome| ExperimentRow { cell, outcome })
        })
        .collect();
    Ok(LabSummary { rows, hits, misses: appended, failed, stopped, health })
}

#[cfg(test)]
mod tests {
    use std::fs;
    use std::path::PathBuf;

    use super::*;
    use soma_spec::read_experiment;

    const SPEC: &str = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\n\
                        effort 0.01\nend\n";

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("soma-lab-unit");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn ledger_round_trips_rows() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("roundtrip.jsonl");
        let _ = fs::remove_file(&path);
        let first = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((first.hits, first.misses), (0, 1));

        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 1);
        let row = &ledger.rows()[0];
        assert_eq!(row.cell, "fig2@edge/b1");
        assert_eq!(row.workload, "fig2");
        assert_eq!(row.batch, 1);
        let row_out = row.outcome().expect("resident outcome");
        assert_eq!(row_out.best.cost.to_bits(), first.rows[0].outcome.best.cost.to_bits());
        // Line rendering is stable through a parse cycle.
        let line = row.to_line();
        assert_eq!(LedgerRow::from_line(&line).unwrap().to_line(), line);
    }

    #[test]
    fn second_run_is_all_hits() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("hits.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();
        let before = fs::read(&path).unwrap();

        let mut events = Vec::new();
        let warm = run_lab(&spec, &path, |ev| events.push(ev.clone())).unwrap();
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert!(events.iter().any(|e| matches!(e, LabEvent::Cached { .. })));
        assert!(!events.iter().any(|e| matches!(e, LabEvent::Started { .. })));
        assert_eq!(fs::read(&path).unwrap(), before, "a warm run never writes");
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_repaired() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("torn.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();
        let intact = fs::read(&path).unwrap();

        // Tear the tail off the only line: the ledger must load empty...
        fs::write(&path, &intact[..intact.len() / 2]).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(fs::read(&path).unwrap().len(), 0, "torn tail truncated");

        // ...and a rerun reproduces the intact file byte-for-byte.
        let again = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((again.hits, again.misses), (0, 1));
        assert_eq!(fs::read(&path).unwrap(), intact);
    }

    #[test]
    fn corrupt_interior_lines_are_quarantined_and_the_run_proceeds() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("corrupt.jsonl");
        let qpath = soma_spec::quarantine_path(&path);
        let _ = fs::remove_file(&qpath);
        fs::write(&path, "garbage\n{\"v\":1}\n").unwrap();

        // The damaged rows move to the sidecar instead of aborting;
        // the lab just sees an empty (clean) ledger and runs cold.
        let summary = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((summary.hits, summary.misses, summary.failed), (0, 1, 0));
        assert_eq!(fs::read_to_string(&qpath).unwrap(), "garbage\n{\"v\":1}\n");
        assert_eq!(Ledger::load(&path).unwrap().len(), 1);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }

    #[test]
    fn a_panicking_cell_is_isolated_and_retried_on_rerun() {
        // Three cells, sequential; the 2nd panics via a scripted fault.
        let text = "soma-experiment v1\nname chaos\nscenario fig2@edge/b1\n\
                    scenario fig4@edge/b1\nscenario fig2@edge/b4\nseeds 7\n\
                    effort 0.01\nthreads seq\nend\n";
        let spec = read_experiment(text).unwrap();
        let path = tmp("panic.jsonl");
        let _ = fs::remove_file(&path);

        let plan = Arc::new(FaultPlan::scripted([(fault::site::LAB_CELL, 1, Fault::Panic)]));
        let mut events = Vec::new();
        let summary = run_lab_chaos(&spec, &path, &AtomicBool::new(false), Some(plan), |ev| {
            events.push(ev.clone());
        })
        .unwrap();

        // The campaign completed: cells 1 and 3 landed, cell 2 failed.
        assert!(!summary.stopped, "a panic is not a stop");
        assert_eq!((summary.hits, summary.misses, summary.failed), (0, 2, 1));
        assert_eq!(summary.rows.len(), 2);
        let failed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                LabEvent::Failed { cell, error, .. } => Some((cell.clone(), error.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, "fig4@edge/b1");
        assert!(failed[0].1.contains("injected fault"), "{}", failed[0].1);
        assert_eq!(Ledger::load(&path).unwrap().len(), 2, "failed cell left no row");

        // A faultless rerun retries exactly the failed cell and
        // converges to the complete campaign.
        let rerun = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((rerun.hits, rerun.misses, rerun.failed), (2, 1, 0));
        assert_eq!(Ledger::load(&path).unwrap().len(), 3);
    }

    #[test]
    fn duplicate_cells_search_once_and_share_one_ledger_row() {
        // The same scenario listed twice collapses to one search and one
        // ledger row; the second cell is served from the first. (Two
        // identical rows would break the resume byte-identity: after an
        // interruption both copies would hit the single surviving row.)
        let text = "soma-experiment v1\nname dup\nscenario fig2@edge/b1\n\
                    scenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let path = tmp("dup.jsonl");
        let _ = fs::remove_file(&path);

        let mut events = Vec::new();
        let cold = run_lab(&spec, &path, |ev| events.push(ev.clone())).unwrap();
        assert_eq!((cold.hits, cold.misses), (1, 1), "duplicate served without search");
        assert_eq!(events.iter().filter(|e| matches!(e, LabEvent::Started { .. })).count(), 1);
        assert_eq!(Ledger::load(&path).unwrap().len(), 1, "one row per key");
        assert_eq!(
            cold.rows[0].outcome.best.cost.to_bits(),
            cold.rows[1].outcome.best.cost.to_bits()
        );

        // And the rerun is total-recall: both cells hit the ledger.
        let warm = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((warm.hits, warm.misses), (2, 0));
    }

    #[test]
    fn stopped_run_leaves_a_replayable_prefix() {
        // Sequential so "first finished cell" is deterministic.
        let text = "soma-experiment v1\nname stop\nscenario fig2@edge/b1\n\
                    scenario fig4@edge/b1\nscenario fig2@edge/b4\nseeds 7\n\
                    effort 0.01\nthreads seq\nend\n";
        let spec = read_experiment(text).unwrap();

        let golden_path = tmp("stop-golden.jsonl");
        let _ = fs::remove_file(&golden_path);
        run_lab(&spec, &golden_path, |_| {}).unwrap();
        let golden = fs::read(&golden_path).unwrap();

        // Raise the stop flag the moment the first cell finishes.
        let path = tmp("stop.jsonl");
        let _ = fs::remove_file(&path);
        let stop = AtomicBool::new(false);
        let summary = run_lab_until(&spec, &path, &stop, |ev| {
            if matches!(ev, LabEvent::Finished { .. }) {
                stop.store(true, Ordering::SeqCst);
            }
        })
        .unwrap();
        assert!(summary.stopped);
        assert_eq!((summary.hits, summary.misses), (0, 1));
        assert_eq!(summary.rows.len(), 1, "only known outcomes are reported");

        // The interrupted ledger is a clean, loadable prefix of the
        // uninterrupted one...
        assert_eq!(Ledger::load(&path).unwrap().len(), 1);
        let partial = fs::read(&path).unwrap();
        assert!(golden.starts_with(&partial), "interrupted ledger is a byte prefix");

        // ...and a rerun resumes from it, byte-identical to a run that
        // was never interrupted.
        let resumed = run_lab(&spec, &path, |_| {}).unwrap();
        assert!(!resumed.stopped);
        assert_eq!((resumed.hits, resumed.misses), (1, 2));
        assert_eq!(fs::read(&path).unwrap(), golden);
    }

    #[test]
    fn config_changes_miss_the_ledger() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("invalidate.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();

        let retuned = read_experiment(&SPEC.replace("effort 0.01", "effort 0.02")).unwrap();
        let rerun = run_lab(&retuned, &path, |_| {}).unwrap();
        assert_eq!((rerun.hits, rerun.misses), (0, 1), "new config, new cell key");
        assert_eq!(Ledger::load(&path).unwrap().len(), 2, "both keys coexist");
    }
}
