//! The experiment orchestrator behind `soma-bench --bin lab`: parallel,
//! resumable, cache-aware execution of an [`ExperimentSpec`].
//!
//! An experiment expands into (scenario × config × seed-portfolio)
//! **cells**; [`run_lab`] executes them as a work queue:
//!
//! * **Cache-aware** — every cell is keyed by a content hash of
//!   (scenario id, resolved hardware, [`SearchConfig`], seed portfolio,
//!   [`soma_search::ENGINE_VERSION`]); cells whose key already sits in
//!   the on-disk **run ledger** are served from it without any search
//!   work ([`LabEvent::Cached`]).
//! * **Resumable** — each completed cell is appended to the ledger (one
//!   JSON line per cell) *in cell order* as soon as all earlier cells
//!   have been written, so an interrupted run leaves a valid prefix and
//!   a rerun picks up exactly where it stopped. A partially written
//!   trailing line (a kill mid-append) is detected and dropped on load.
//!   The final ledger of an interrupted-then-resumed run is
//!   byte-identical to an uninterrupted one.
//! * **Parallel with deterministic merge** — cell searches that miss the
//!   ledger fan out across the threads selected by the spec's
//!   [`Parallelism`] policy (the `threads` directive / `--threads`
//!   flag). Results are merged, the ledger written and
//!   [`LabEvent::Cached`]/[`LabEvent::Finished`] observed in cell order
//!   regardless of completion order, so ledger bytes and rows are
//!   bit-identical across thread counts — and to the sequential
//!   [`run_experiment`](crate::run_experiment).

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use soma_search::record::{outcome_from_json, outcome_to_json, ENGINE_VERSION};
use soma_search::{Scheduler, SearchConfig, SearchOutcome};
use soma_spec::{cell_hash_hex, ExperimentCell, ExperimentSpec};

use crate::ExperimentRow;

/// Ledger line format version; bumping it invalidates old ledgers.
pub const LEDGER_VERSION: u64 = 1;

/// A typed progress event of the experiment orchestrator, mirroring the
/// per-search [`SearchEvent`](soma_search::SearchEvent) one level up:
/// events carry plain strings and numbers, serialise cheaply, and arrive
/// **live**: `Queued` then `Cached` in cell order up front, `Started` as
/// each search begins (execution order — nondeterministic under a
/// parallel [`Parallelism`] policy, cell order under
/// [`Parallelism::Sequential`]), and `Finished` in cell order, each
/// emitted the moment the cell's row lands in the ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LabEvent {
    /// A cell entered the work queue.
    Queued {
        /// The cell's scenario id.
        cell: String,
        /// The cell's ledger key (16 hex digits).
        hash: String,
    },
    /// A cell was served from the run ledger — no search work.
    Cached {
        /// The cell's scenario id.
        cell: String,
        /// The ledger key that hit.
        hash: String,
    },
    /// A cell's search started (ledger miss).
    Started {
        /// The cell's scenario id.
        cell: String,
    },
    /// A cell's search finished and its row was appended to the ledger.
    Finished {
        /// The cell's scenario id.
        cell: String,
        /// The ledger key the row was stored under.
        hash: String,
        /// Best (envelope) cost of the cell's portfolio.
        cost: f64,
        /// Best latency in cycles.
        latency_cycles: u64,
        /// Completed schedule evaluations of the cell's portfolio.
        evals: u64,
    },
}

/// One persisted ledger row: the cell's identity plus its complete
/// [`SearchOutcome`].
#[derive(Debug, Clone)]
pub struct LedgerRow {
    /// The content hash this row is keyed by (16 hex digits).
    pub hash: String,
    /// Scenario id of the cell.
    pub cell: String,
    /// Canonical workload name.
    pub workload: String,
    /// Resolved platform name.
    pub platform: String,
    /// Batch size.
    pub batch: u32,
    /// The cell's search outcome, losslessly persisted.
    pub outcome: SearchOutcome,
}

impl LedgerRow {
    fn new(cell: &ExperimentCell, hash: &str, outcome: SearchOutcome) -> Self {
        Self {
            hash: hash.to_string(),
            cell: cell.id.clone(),
            workload: cell.workload.clone(),
            platform: cell.platform.clone(),
            batch: cell.batch,
            outcome,
        }
    }

    /// Renders the row as its single-line JSON ledger entry (no trailing
    /// newline). Deterministic: equal rows render byte-identically.
    pub fn to_line(&self) -> String {
        let mut o = Value::obj();
        o.push("v", LEDGER_VERSION.into());
        o.push("hash", self.hash.as_str().into());
        o.push("cell", self.cell.as_str().into());
        o.push("workload", self.workload.as_str().into());
        o.push("platform", self.platform.as_str().into());
        o.push("batch", self.batch.into());
        o.push("outcome", outcome_to_json(&self.outcome));
        json::to_string(&o)
    }

    fn from_line(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let version = v.get("v").and_then(Value::as_u64).ok_or("missing `v`")?;
        if version != LEDGER_VERSION {
            return Err(format!("unsupported ledger version {version}"));
        }
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing `{key}`"))?
                .to_string())
        };
        let batch = v.get("batch").and_then(Value::as_u64).ok_or("missing `batch`")?;
        let outcome = outcome_from_json(v.get("outcome").ok_or("missing `outcome`")?)
            .map_err(|e| e.to_string())?;
        Ok(Self {
            hash: text("hash")?,
            cell: text("cell")?,
            workload: text("workload")?,
            platform: text("platform")?,
            batch: u32::try_from(batch).map_err(|_| "batch exceeds u32".to_string())?,
            outcome,
        })
    }
}

/// The on-disk run ledger: an append-only JSONL file mapping cell
/// content hashes to persisted [`SearchOutcome`]s.
#[derive(Debug)]
pub struct Ledger {
    path: PathBuf,
    rows: Vec<LedgerRow>,
    index: HashMap<String, usize>,
}

impl Ledger {
    /// Loads (or creates the notion of) the ledger at `path`. A missing
    /// file is an empty ledger. A partially written trailing line — the
    /// signature of a run killed mid-append — is dropped and truncated
    /// away so subsequent appends continue from the last complete row.
    ///
    /// # Errors
    ///
    /// I/O errors, or a corrupt line *before* the last (which indicates
    /// real damage rather than an interrupted append).
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut ledger = Self { path: path.to_path_buf(), rows: Vec::new(), index: HashMap::new() };
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ledger),
            Err(e) => return Err(e),
        };

        let mut keep_bytes = 0usize;
        let mut offset = 0usize;
        let lines: Vec<&str> = text.split('\n').collect();
        for (i, line) in lines.iter().enumerate() {
            let is_last = i + 1 == lines.len();
            if line.is_empty() {
                offset += 1;
                continue;
            }
            match LedgerRow::from_line(line) {
                Ok(row) => {
                    let complete = !is_last; // `split` leaves no trailing '\n' on the last piece
                    if !complete {
                        break; // no newline after it: treat as torn write
                    }
                    ledger.index.insert(row.hash.clone(), ledger.rows.len());
                    ledger.rows.push(row);
                    offset += line.len() + 1;
                    keep_bytes = offset;
                }
                Err(msg) if is_last => {
                    // Torn trailing line: drop it.
                    let _ = msg;
                    break;
                }
                Err(msg) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: corrupt ledger line {}: {msg}", path.display(), i + 1),
                    ));
                }
            }
        }
        if keep_bytes < text.len() {
            // Truncate the torn tail so appends produce a clean file.
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(keep_bytes as u64)?;
        }
        Ok(ledger)
    }

    /// The ledger's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// All rows, in file order.
    pub fn rows(&self) -> &[LedgerRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the ledger holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by its cell content hash.
    pub fn lookup(&self, hash: &str) -> Option<&LedgerRow> {
        self.index.get(hash).map(|&i| &self.rows[i])
    }

    /// Appends one row, creating parent directories and the file on
    /// first use, and flushes before returning.
    fn append(&mut self, row: LedgerRow) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&self.path)?;
        writeln!(f, "{}", row.to_line())?;
        f.flush()?;
        self.index.insert(row.hash.clone(), self.rows.len());
        self.rows.push(row);
        Ok(())
    }
}

/// The ledger key of one experiment cell under a spec's configuration.
pub fn cell_key(cell: &ExperimentCell, config: &SearchConfig, seeds: &[u64]) -> String {
    cell_hash_hex(&cell.id, &cell.hw, config, seeds, ENGINE_VERSION)
}

/// What [`run_lab`] reports back.
#[derive(Debug)]
pub struct LabSummary {
    /// One row per cell, in spec cell order (cached and fresh alike).
    pub rows: Vec<ExperimentRow>,
    /// Cells served from the ledger.
    pub hits: usize,
    /// Cells that ran a search (and were appended to the ledger).
    pub misses: usize,
}

/// In-order ledger flusher: completed cells park in `ready` until every
/// earlier miss has been written, so the ledger is an in-cell-order
/// prefix at every instant (the resume guarantee) no matter which order
/// the pool finishes in. The observer lives here too: `Started` events
/// are forwarded live as jobs begin, and each cell's `Finished` event is
/// emitted the moment its row lands in the ledger — live progress, in
/// flush (cell) order. Worker threads report through the shared mutex
/// around this state, which is why the observer must be `Send`.
struct InOrderFlush<'l, 'o> {
    ledger: &'l mut Ledger,
    observer: &'o mut (dyn FnMut(&LabEvent) + Send),
    /// Position into the miss list of the next row to write.
    next: usize,
    ready: BTreeMap<usize, (LedgerRow, LabEvent)>,
    err: Option<io::Error>,
}

impl InOrderFlush<'_, '_> {
    fn complete(&mut self, miss_pos: usize, row: LedgerRow, done: LabEvent) {
        self.ready.insert(miss_pos, (row, done));
        while let Some((row, done)) = self.ready.remove(&self.next) {
            self.next += 1;
            // `Finished` asserts "this row landed in the ledger" — once
            // an append has failed, later rows are neither written nor
            // reported finished (run_lab surfaces the error instead).
            if self.err.is_some() {
                continue;
            }
            match self.ledger.append(row) {
                Ok(()) => (self.observer)(&done),
                Err(e) => self.err = Some(e),
            }
        }
    }
}

/// Executes an experiment against the ledger at `ledger_path`.
///
/// Ledger-hit cells are served without search work; misses fan out
/// across the threads chosen by `spec.parallelism` and append to the
/// ledger in cell order. The observer sees [`LabEvent`]s in the order
/// documented on the type. The returned rows and ledger bytes are
/// bit-identical across every [`Parallelism`] policy — and to a
/// sequential [`run_experiment`](crate::run_experiment) of the same
/// spec.
///
/// # Errors
///
/// I/O errors loading or appending the ledger, or corrupt non-trailing
/// ledger lines.
pub fn run_lab(
    spec: &ExperimentSpec,
    ledger_path: &Path,
    mut observer: impl FnMut(&LabEvent) + Send,
) -> io::Result<LabSummary> {
    let cells = spec.cells();
    let keys: Vec<String> = cells.iter().map(|c| cell_key(c, &spec.config, &spec.seeds)).collect();
    let mut ledger = Ledger::load(ledger_path)?;

    for (cell, key) in cells.iter().zip(&keys) {
        observer(&LabEvent::Queued { cell: cell.id.clone(), hash: key.clone() });
    }

    let mut outcomes: Vec<Option<SearchOutcome>> = vec![None; cells.len()];
    let mut misses: Vec<usize> = Vec::new();
    // Within-run dedup: a spec can name the same cell twice (an explicit
    // scenario that the workload grid also produces). Searching it twice
    // would append two identical rows — which an interrupted rerun could
    // never reproduce (both copies would hit the one surviving row), so
    // one key searches once and owns one row; later duplicates are
    // served from the first occurrence, like any other cache hit.
    let mut duplicates: Vec<(usize, usize)> = Vec::new();
    let mut first_claim: HashMap<&str, usize> = HashMap::new();
    for (i, (cell, key)) in cells.iter().zip(&keys).enumerate() {
        if let Some(row) = ledger.lookup(key) {
            outcomes[i] = Some(row.outcome.clone());
            observer(&LabEvent::Cached { cell: cell.id.clone(), hash: key.clone() });
        } else if let Some(&first) = first_claim.get(key.as_str()) {
            duplicates.push((i, first));
            observer(&LabEvent::Cached { cell: cell.id.clone(), hash: key.clone() });
        } else {
            first_claim.insert(key, i);
            misses.push(i);
        }
    }
    let hits = cells.len() - misses.len();

    // Fan the misses out. Events flow live through the shared flush
    // state — `Started` as each job begins (execution order), `Finished`
    // as each row lands in the ledger (cell order) — and ledger rows are
    // written through the same in-order writer, so an interrupted run
    // keeps every finished prefix cell.
    let flush = Mutex::new(InOrderFlush {
        ledger: &mut ledger,
        observer: &mut observer,
        next: 0,
        ready: BTreeMap::new(),
        err: None,
    });
    let work: Vec<(usize, usize)> = misses.iter().copied().enumerate().collect();
    let finished: Vec<(usize, SearchOutcome)> =
        spec.parallelism.map_collect(work, |(miss_pos, cell_idx)| {
            let cell = &cells[cell_idx];
            let key = &keys[cell_idx];
            {
                let mut state = flush.lock().expect("ledger flusher poisoned");
                (state.observer)(&LabEvent::Started { cell: cell.id.clone() });
            }
            let outcome = Scheduler::new(&cell.net, &cell.hw)
                .config(spec.config.clone())
                .seeds(spec.seeds.iter().copied())
                .parallelism(spec.parallelism.nested())
                .run();
            let done = LabEvent::Finished {
                cell: cell.id.clone(),
                hash: key.clone(),
                cost: outcome.best.cost,
                latency_cycles: outcome.best.report.latency_cycles,
                evals: outcome.evals,
            };
            let row = LedgerRow::new(cell, key, outcome.clone());
            flush.lock().expect("ledger flusher poisoned").complete(miss_pos, row, done);
            (cell_idx, outcome)
        });

    let state = flush.into_inner().expect("ledger flusher poisoned");
    if let Some(e) = state.err {
        return Err(e);
    }
    debug_assert_eq!(state.next, misses.len(), "every miss was flushed");

    for (cell_idx, outcome) in finished {
        outcomes[cell_idx] = Some(outcome);
    }
    for (dup, first) in duplicates {
        outcomes[dup] = outcomes[first].clone();
    }

    let rows = cells
        .into_iter()
        .zip(outcomes)
        .map(|(cell, outcome)| ExperimentRow {
            cell,
            outcome: outcome.expect("every cell is a hit or a flushed miss"),
        })
        .collect();
    Ok(LabSummary { rows, hits, misses: misses.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_spec::read_experiment;

    const SPEC: &str = "soma-experiment v1\nname t\nscenario fig2@edge/b1\nseeds 7\n\
                        effort 0.01\nend\n";

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("soma-lab-unit");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn ledger_round_trips_rows() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("roundtrip.jsonl");
        let _ = fs::remove_file(&path);
        let first = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((first.hits, first.misses), (0, 1));

        let ledger = Ledger::load(&path).unwrap();
        assert_eq!(ledger.len(), 1);
        let row = &ledger.rows()[0];
        assert_eq!(row.cell, "fig2@edge/b1");
        assert_eq!(row.workload, "fig2");
        assert_eq!(row.batch, 1);
        assert_eq!(row.outcome.best.cost.to_bits(), first.rows[0].outcome.best.cost.to_bits());
        // Line rendering is stable through a parse cycle.
        let line = row.to_line();
        assert_eq!(LedgerRow::from_line(&line).unwrap().to_line(), line);
    }

    #[test]
    fn second_run_is_all_hits() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("hits.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();
        let before = fs::read(&path).unwrap();

        let mut events = Vec::new();
        let warm = run_lab(&spec, &path, |ev| events.push(ev.clone())).unwrap();
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert!(events.iter().any(|e| matches!(e, LabEvent::Cached { .. })));
        assert!(!events.iter().any(|e| matches!(e, LabEvent::Started { .. })));
        assert_eq!(fs::read(&path).unwrap(), before, "a warm run never writes");
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_repaired() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("torn.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();
        let intact = fs::read(&path).unwrap();

        // Tear the tail off the only line: the ledger must load empty...
        fs::write(&path, &intact[..intact.len() / 2]).unwrap();
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.is_empty());
        assert_eq!(fs::read(&path).unwrap().len(), 0, "torn tail truncated");

        // ...and a rerun reproduces the intact file byte-for-byte.
        let again = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((again.hits, again.misses), (0, 1));
        assert_eq!(fs::read(&path).unwrap(), intact);
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = tmp("corrupt.jsonl");
        fs::write(&path, "garbage\n{\"v\":1}\n").unwrap();
        let err = Ledger::load(&path).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn duplicate_cells_search_once_and_share_one_ledger_row() {
        // The same scenario listed twice collapses to one search and one
        // ledger row; the second cell is served from the first. (Two
        // identical rows would break the resume byte-identity: after an
        // interruption both copies would hit the single surviving row.)
        let text = "soma-experiment v1\nname dup\nscenario fig2@edge/b1\n\
                    scenario fig2@edge/b1\nseeds 7\neffort 0.01\nend\n";
        let spec = read_experiment(text).unwrap();
        let path = tmp("dup.jsonl");
        let _ = fs::remove_file(&path);

        let mut events = Vec::new();
        let cold = run_lab(&spec, &path, |ev| events.push(ev.clone())).unwrap();
        assert_eq!((cold.hits, cold.misses), (1, 1), "duplicate served without search");
        assert_eq!(events.iter().filter(|e| matches!(e, LabEvent::Started { .. })).count(), 1);
        assert_eq!(Ledger::load(&path).unwrap().len(), 1, "one row per key");
        assert_eq!(
            cold.rows[0].outcome.best.cost.to_bits(),
            cold.rows[1].outcome.best.cost.to_bits()
        );

        // And the rerun is total-recall: both cells hit the ledger.
        let warm = run_lab(&spec, &path, |_| {}).unwrap();
        assert_eq!((warm.hits, warm.misses), (2, 0));
    }

    #[test]
    fn config_changes_miss_the_ledger() {
        let spec = read_experiment(SPEC).unwrap();
        let path = tmp("invalidate.jsonl");
        let _ = fs::remove_file(&path);
        run_lab(&spec, &path, |_| {}).unwrap();

        let retuned = read_experiment(&SPEC.replace("effort 0.01", "effort 0.02")).unwrap();
        let rerun = run_lab(&retuned, &path, |_| {}).unwrap();
        assert_eq!((rerun.hits, rerun.misses), (0, 1), "new config, new cell key");
        assert_eq!(Ledger::load(&path).unwrap().len(), 2, "both keys coexist");
    }
}
