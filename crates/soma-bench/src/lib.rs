//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary regenerates one figure/table of the paper (see DESIGN.md's
//! per-experiment index) and prints CSV to stdout plus commentary to
//! stderr. Common knobs come from the environment:
//!
//! * `SOMA_EFFORT` — multiplier on the per-workload search effort
//!   (default 1.0; the built-in per-workload efforts are already scaled
//!   down from paper budgets so the full harness runs on a laptop).
//! * `SOMA_FULL=1` — sweep all four batch sizes {1,4,16,64} instead of
//!   the quick default {1,4}.
//! * `SOMA_SEED` — base RNG seed (default 2025; SoMa and Cocco share the
//!   per-configuration seed, as in the paper's artifact).

use soma_arch::HardwareConfig;
use soma_model::Network;
use soma_search::SearchConfig;

/// Reads an f64 from the environment with a default.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a u64 from the environment with a default.
pub fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Batch sizes to sweep: {1,4} by default, {1,4,16,64} under `SOMA_FULL=1`.
pub fn batch_sizes() -> Vec<u32> {
    if env_u64("SOMA_FULL", 0) == 1 {
        vec![1, 4, 16, 64]
    } else {
        vec![1, 4]
    }
}

/// Per-workload search effort, scaled so deep transformers stay tractable:
/// the cost of one SA iteration grows with layer and tensor count, so the
/// effort shrinks correspondingly. `SOMA_EFFORT` multiplies the result.
pub fn effort_for(net: &Network) -> f64 {
    let layers = net.len() as f64;
    // Budget roughly constant total work: ~8000 stage-1 iterations. SoMa's
    // space is far larger than Cocco's, so starving both equally (the
    // paper runs beta = 100, i.e. effort 1.0, for 2 days on 192 cores)
    // flatters the baseline; this is the smallest budget where SoMa's
    // advantage is stable across the suite.
    let base = (120.0 / layers).clamp(0.004, 1.0);
    base * env_f64("SOMA_EFFORT", 1.0)
}

/// Search configuration for one (workload, platform, batch) cell.
pub fn config_for(net: &Network, seed_salt: u64) -> SearchConfig {
    SearchConfig {
        effort: effort_for(net),
        seed: env_u64("SOMA_SEED", 2025) ^ seed_salt,
        stage2_cap: 50_000,
        max_allocator_iters: 4,
        ..SearchConfig::default()
    }
}

/// The two evaluation platforms of the paper (Sec. VI-A1).
pub fn platforms() -> Vec<HardwareConfig> {
    vec![HardwareConfig::edge(), HardwareConfig::cloud()]
}

/// Workloads for a platform (paper Fig. 6): edge runs GPT-2-Small(512),
/// cloud runs GPT-2-XL(1024).
pub fn workloads(platform: &HardwareConfig, batch: u32) -> Vec<Network> {
    if platform.name.starts_with("edge") {
        soma_model::zoo::edge_suite(batch)
    } else {
        soma_model::zoo::cloud_suite(batch)
    }
}

/// A simple deterministic hash for seed salting.
pub fn salt(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for p in parts {
        for b in p.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn effort_shrinks_with_depth() {
        let small = zoo::fig2(1);
        let big = zoo::gpt2_xl_prefill(1, 64);
        assert!(effort_for(&small) > effort_for(&big));
    }

    #[test]
    fn salt_is_deterministic_and_distinguishes() {
        assert_eq!(salt(&["a", "b"]), salt(&["a", "b"]));
        assert_ne!(salt(&["a"]), salt(&["b"]));
    }

    #[test]
    fn platforms_match_paper() {
        let p = platforms();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].peak_tops(), 16.0);
        assert_eq!(p[1].peak_tops(), 128.0);
    }
}
