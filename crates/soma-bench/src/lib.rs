//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary regenerates one figure/table of the paper (see DESIGN.md's
//! per-experiment index) and prints CSV to stdout plus commentary to
//! stderr. All binaries share one documented knob surface, parsed once by
//! [`RunConfig::from_env`]:
//!
//! * `SOMA_EFFORT` — multiplier on the per-workload search effort
//!   (default 1.0; the built-in per-workload efforts are already scaled
//!   down from paper budgets so the full harness runs on a laptop).
//! * `SOMA_FULL=1` — sweep all four batch sizes {1,4,16,64} instead of
//!   the quick default {1,4}.
//! * `SOMA_SEED` — base RNG seed (default 2025; SoMa and Cocco share the
//!   per-configuration seed, as in the paper's artifact).
//! * `SOMA_THREADS` — thread policy: `auto` (current/global pool, the
//!   default), `seq` (inline, no workers), or a fixed worker count
//!   `N >= 2` (a dedicated scoped pool per parallel region). Never
//!   affects results or ledger bytes — wall-clock only.
//! * `SOMA_WORKLOAD` — case-insensitive substring filter over scenario
//!   ids (`<workload>@<platform>/b<batch>`), so `resnet` filters
//!   workloads, `@edge` platforms and `/b4` batch sizes; binaries that
//!   sweep a suite skip non-matching scenarios.
//!
//! Unparseable values are a **hard error** — a typo'd knob aborts the run
//! instead of silently falling back to a default and producing a
//! mislabelled CSV. This crate is the only workspace member allowed to
//! read `std::env` (CI lints the rest), so a `RunConfig` value *is* the
//! complete run configuration and can be logged next to the results.

pub mod experiment;
pub mod lab;
pub mod loadgen;

pub use experiment::{csv_rows, run_cells, run_experiment, ExperimentRow, CSV_HEADER};
pub use lab::{run_lab, run_lab_chaos, run_lab_until, LabEvent, LabSummary, Ledger, LedgerRow};
pub use loadgen::{storm, StormConfig, StormReport};

/// One `--version` line shared by every binary in this crate: binary
/// name, crate version, the engine fingerprint baked into ledger keys,
/// and the serve wire-protocol version.
#[must_use]
pub fn version_line(binary: &str) -> String {
    format!(
        "{binary} {} (engine {}, protocol v{})",
        env!("CARGO_PKG_VERSION"),
        soma_search::record::ENGINE_VERSION,
        soma_serve::PROTOCOL_VERSION,
    )
}

use std::fmt;

use serde::{Deserialize, Serialize};
use soma_arch::HardwareConfig;
use soma_model::Network;
use soma_search::{Parallelism, SearchConfig};
use soma_spec::registry::{suite, Scenario};
use soma_spec::Preset;

/// A `SOMA_*` environment variable that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The offending variable name.
    pub key: &'static str,
    /// The value found in the environment.
    pub value: String,
    /// What the variable expects.
    pub expected: &'static str,
}

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}={:?}: expected {}", self.key, self.value, self.expected)
    }
}

impl std::error::Error for EnvParseError {}

/// Reads and parses one environment variable; absence is `Ok(None)`,
/// presence with an unparseable value is a hard [`EnvParseError`].
fn parse_var<T: std::str::FromStr>(
    key: &'static str,
    expected: &'static str,
) -> Result<Option<T>, EnvParseError> {
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(EnvParseError { key, value: "<non-unicode>".into(), expected })
        }
        Ok(raw) => {
            raw.trim().parse().map(Some).map_err(|_| EnvParseError { key, value: raw, expected })
        }
    }
}

/// The serialisable run configuration shared by every harness binary —
/// the explicit replacement for per-binary ad-hoc `SOMA_*` reads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[must_use]
pub struct RunConfig {
    /// Multiplier on the per-workload search effort (`SOMA_EFFORT`).
    pub effort_scale: f64,
    /// Base RNG seed (`SOMA_SEED`).
    pub seed: u64,
    /// Sweep the full batch grid {1,4,16,64} (`SOMA_FULL=1`).
    pub full: bool,
    /// Thread policy (`SOMA_THREADS`): `auto`, `seq`, or a fixed worker
    /// count. Wall-clock only — never an input to results, ledger bytes
    /// or cache keys.
    pub threads: Parallelism,
    /// Scenario-id substring filter (`SOMA_WORKLOAD`, empty = all;
    /// case-insensitive, matched against `<workload>@<platform>/b<batch>`
    /// registry ids and against bare workload names).
    pub workload: String,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            effort_scale: 1.0,
            seed: 2025,
            full: false,
            threads: Parallelism::Auto,
            workload: String::new(),
        }
    }
}

impl RunConfig {
    /// Parses the documented `SOMA_*` knobs. Missing variables keep
    /// their defaults; present-but-unparseable values are a hard error.
    pub fn from_env() -> Result<Self, EnvParseError> {
        let mut rc = Self::default();
        if let Some(v) = parse_var::<f64>("SOMA_EFFORT", "a floating-point effort multiplier")? {
            rc.effort_scale = v;
        }
        if let Some(v) = parse_var::<u64>("SOMA_SEED", "an unsigned integer seed")? {
            rc.seed = v;
        }
        if let Some(v) = parse_var::<u64>("SOMA_FULL", "0 or 1")? {
            rc.full = v != 0;
        }
        if let Some(v) =
            parse_var::<Parallelism>("SOMA_THREADS", "`auto`, `seq`, or a thread count >= 1")?
        {
            rc.threads = v;
        }
        if let Some(v) = parse_var::<String>("SOMA_WORKLOAD", "a scenario-id substring")? {
            rc.workload = v;
        }
        Ok(rc)
    }

    /// [`from_env`](Self::from_env), aborting the process with a usage
    /// message on a bad knob (the harness-binary entry-point idiom).
    pub fn from_env_or_exit() -> Self {
        Self::from_env().unwrap_or_else(|e| {
            eprintln!("soma-bench: {e}");
            std::process::exit(2);
        })
    }

    /// Batch sizes to sweep: {1,4} by default, {1,4,16,64} under `full`.
    pub fn batch_sizes(&self) -> Vec<u32> {
        if self.full {
            vec![1, 4, 16, 64]
        } else {
            vec![1, 4]
        }
    }

    /// Per-workload search effort, scaled so deep transformers stay
    /// tractable: the cost of one SA iteration grows with layer and
    /// tensor count, so the effort shrinks correspondingly.
    /// `effort_scale` multiplies the result.
    pub fn effort_for(&self, net: &Network) -> f64 {
        let layers = net.len() as f64;
        // Budget roughly constant total work: ~8000 stage-1 iterations.
        // SoMa's space is far larger than Cocco's, so starving both
        // equally (the paper runs beta = 100, i.e. effort 1.0, for 2 days
        // on 192 cores) flatters the baseline; this is the smallest
        // budget where SoMa's advantage is stable across the suite.
        let base = (120.0 / layers).clamp(0.004, 1.0);
        base * self.effort_scale
    }

    /// Search configuration for one (workload, platform, batch) cell.
    pub fn config_for(&self, net: &Network, seed_salt: u64) -> SearchConfig {
        SearchConfig {
            effort: self.effort_for(net),
            seed: self.seed ^ seed_salt,
            stage2_cap: 50_000,
            max_allocator_iters: 4,
            ..SearchConfig::default()
        }
    }

    /// Whether a network passes the `workload` substring filter
    /// (matched against the bare network name; see
    /// [`selects_id`](Self::selects_id) for full scenario-id matching).
    pub fn selects(&self, net: &Network) -> bool {
        self.selects_id(net.name())
    }

    /// Whether a scenario id (or any name fragment) passes the
    /// `workload` filter: a **case-insensitive substring** match, so
    /// `resnet` selects both ResNet variants, `@edge` selects every
    /// edge-platform scenario and `/b4` one batch size.
    pub fn selects_id(&self, id: &str) -> bool {
        self.workload.is_empty()
            || id.to_ascii_lowercase().contains(&self.workload.to_ascii_lowercase())
    }
}

/// The two evaluation platforms of the paper (Sec. VI-A1).
pub fn platforms() -> Vec<HardwareConfig> {
    vec![HardwareConfig::edge(), HardwareConfig::cloud()]
}

/// Workloads for a platform (paper Fig. 6), resolved through the
/// scenario registry: edge-derived platforms run the edge suite
/// (GPT-2-Small at 512 tokens), everything else the cloud suite
/// (GPT-2-XL at 1024).
pub fn workloads(platform: &HardwareConfig, batch: u32) -> Vec<Network> {
    let preset = Preset::of(platform).unwrap_or(Preset::Cloud);
    suite(preset, batch).iter().map(Scenario::network).collect()
}

/// The registry key for one harness output row: the stable scenario id
/// when `platform` *is* a registry preset, otherwise the same shape with
/// the resolved platform name (e.g. a fig7 sweep point
/// `resnet50@edge-8MB-32GBps/b4`).
pub fn scenario_key(platform: &HardwareConfig, workload: &str, batch: u32) -> String {
    match Preset::of(platform) {
        Some(p) if p.config() == *platform => soma_spec::scenario_id(workload, p, batch),
        _ => format!("{workload}@{}/b{batch}", platform.name),
    }
}

/// A simple deterministic hash for seed salting.
pub fn salt(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for p in parts {
        for b in p.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use soma_model::zoo;

    #[test]
    fn effort_shrinks_with_depth() {
        let rc = RunConfig::default();
        let small = zoo::fig2(1);
        let big = zoo::gpt2_xl_prefill(1, 64);
        assert!(rc.effort_for(&small) > rc.effort_for(&big));
    }

    #[test]
    fn effort_scale_multiplies() {
        let net = zoo::fig2(1);
        let base = RunConfig::default();
        let scaled = RunConfig { effort_scale: 0.5, ..RunConfig::default() };
        assert!((scaled.effort_for(&net) - 0.5 * base.effort_for(&net)).abs() < 1e-12);
    }

    #[test]
    fn salt_is_deterministic_and_distinguishes() {
        assert_eq!(salt(&["a", "b"]), salt(&["a", "b"]));
        assert_ne!(salt(&["a"]), salt(&["b"]));
    }

    #[test]
    fn platforms_match_paper() {
        let p = platforms();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].peak_tops(), 16.0);
        assert_eq!(p[1].peak_tops(), 128.0);
    }

    #[test]
    fn workload_filter_matches_substrings() {
        let rc = RunConfig { workload: "fig2".into(), ..RunConfig::default() };
        assert!(rc.selects(&zoo::fig2(1)));
        assert!(!rc.selects(&zoo::fig4(1)));
        assert!(RunConfig::default().selects(&zoo::fig4(1)));
    }

    #[test]
    fn workload_filter_is_case_insensitive() {
        let rc = RunConfig { workload: "ResNet".into(), ..RunConfig::default() };
        assert!(rc.selects(&zoo::resnet50(1)));
        assert!(rc.selects_id("resnet101@cloud/b4"));
        assert!(!rc.selects(&zoo::fig2(1)));
    }

    #[test]
    fn workload_filter_matches_scenario_id_parts() {
        let edge = RunConfig { workload: "@edge".into(), ..RunConfig::default() };
        assert!(edge.selects_id("fig2@edge/b1"));
        assert!(!edge.selects_id("fig2@cloud/b1"));
        let b4 = RunConfig { workload: "/b4".into(), ..RunConfig::default() };
        assert!(b4.selects_id("fig2@edge/b4"));
        assert!(!b4.selects_id("fig2@edge/b1"));
    }

    #[test]
    fn scenario_keys_use_registry_ids_for_presets() {
        let edge = HardwareConfig::edge();
        assert_eq!(scenario_key(&edge, "resnet50", 4), "resnet50@edge/b4");
        let swept = HardwareConfig::builder()
            .like(&edge)
            .name("edge-8MB-32GBps")
            .buffer_mib(8)
            .dram_gbps(32.0)
            .build();
        // A derived sweep point is not the registry preset: keyed by its
        // resolved name instead.
        assert_eq!(scenario_key(&swept, "resnet50", 4), "resnet50@edge-8MB-32GBps/b4");
    }

    #[test]
    fn batch_grid_tracks_full_flag() {
        assert_eq!(RunConfig::default().batch_sizes(), vec![1, 4]);
        let full = RunConfig { full: true, ..RunConfig::default() };
        assert_eq!(full.batch_sizes(), vec![1, 4, 16, 64]);
    }

    #[test]
    fn config_for_salts_the_seed() {
        let rc = RunConfig::default();
        let net = zoo::fig2(1);
        let a = rc.config_for(&net, salt(&["a"]));
        let b = rc.config_for(&net, salt(&["b"]));
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.effort, b.effort);
    }

    #[test]
    fn env_parse_error_is_descriptive() {
        let e = EnvParseError { key: "SOMA_EFFORT", value: "fast".into(), expected: "a float" };
        let msg = e.to_string();
        assert!(msg.contains("SOMA_EFFORT"));
        assert!(msg.contains("fast"));
    }
}
