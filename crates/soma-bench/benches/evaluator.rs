//! Criterion benches for the evaluator path: parsing, double-buffer DLSA
//! construction, buffer profiles and the timeline simulation — the inner
//! loop of both SA stages.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use soma_arch::HardwareConfig;
use soma_core::{lifetime, parse_lfa, Dlsa, Lfa};
use soma_model::zoo;
use soma_sim::{simulate, CoreArrayModel};

fn bench_parse(c: &mut Criterion) {
    let net = zoo::resnet50(1);
    let lfa = Lfa::unfused(&net, 8);
    c.bench_function("parse_lfa/resnet50_unfused_t8", |b| {
        b.iter(|| parse_lfa(&net, &lfa).unwrap())
    });

    let net_t = zoo::gpt2_small_prefill(1, 512);
    let lfa_t = Lfa::unfused(&net_t, 4);
    c.bench_function("parse_lfa/gpt2s_prefill_unfused_t4", |b| {
        b.iter(|| parse_lfa(&net_t, &lfa_t).unwrap())
    });
}

fn bench_simulate(c: &mut Criterion) {
    let net = zoo::resnet50(1);
    let plan = parse_lfa(&net, &Lfa::unfused(&net, 8)).unwrap();
    let dlsa = Dlsa::double_buffer(&plan);
    let hw = HardwareConfig::edge();
    let mut model = CoreArrayModel::new(&hw);
    // Warm the memo cache so the bench measures the timeline itself.
    let _ = simulate(&plan, &dlsa, &hw, &mut model).unwrap();
    c.bench_function("simulate/resnet50_t8_warm", |b| {
        b.iter(|| simulate(&plan, &dlsa, &hw, &mut model).unwrap())
    });
}

fn bench_buffer_profile(c: &mut Criterion) {
    let net = zoo::resnet50(1);
    let plan = parse_lfa(&net, &Lfa::unfused(&net, 8)).unwrap();
    let dlsa = Dlsa::double_buffer(&plan);
    c.bench_function("buffer_profile/resnet50_t8", |b| {
        b.iter(|| lifetime::buffer_profile(&plan, &dlsa))
    });
}

fn bench_double_buffer(c: &mut Criterion) {
    let net = zoo::resnet50(1);
    let plan = parse_lfa(&net, &Lfa::unfused(&net, 8)).unwrap();
    c.bench_function("dlsa_double_buffer/resnet50_t8", |b| {
        b.iter_batched(|| &plan, Dlsa::double_buffer, BatchSize::SmallInput)
    });
}

criterion_group!(benches, bench_parse, bench_simulate, bench_buffer_profile, bench_double_buffer);
criterion_main!(benches);
