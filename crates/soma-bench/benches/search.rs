//! Criterion benches for the search stack: one full stage-1 objective
//! evaluation, one stage-2 objective evaluation, and small end-to-end
//! schedules (SoMa and Cocco).

use criterion::{criterion_group, criterion_main, Criterion};
use soma_arch::HardwareConfig;
use soma_core::{parse_lfa, Dlsa, Lfa};
use soma_model::zoo;
use soma_search::{schedule, schedule_cocco, CostWeights, Objective, SearchConfig};

fn bench_objective(c: &mut Criterion) {
    let net = zoo::resnet50(1);
    let hw = HardwareConfig::edge();
    let lfa = Lfa::unfused(&net, 8);
    let mut obj = Objective::new(&net, &hw, CostWeights::default());
    c.bench_function("objective/eval_lfa_resnet50", |b| {
        b.iter(|| obj.eval_lfa(&lfa, hw.buffer_bytes).unwrap().0)
    });

    let plan = parse_lfa(&net, &lfa).unwrap();
    let dlsa = Dlsa::double_buffer(&plan);
    c.bench_function("objective/eval_dlsa_resnet50", |b| {
        b.iter(|| obj.eval_parts(&plan, &dlsa, hw.buffer_bytes).unwrap().0)
    });

    // The compiled-engine fast path the stage-2 annealer actually runs:
    // allocation-free queue replay + maintained peak.
    let compiled = obj.compile(&plan);
    let peak = soma_core::lifetime::peak_buffer(&plan, &dlsa);
    c.bench_function("objective/eval_dlsa_compiled_resnet50", |b| {
        b.iter(|| obj.eval_compiled_with_peak(&compiled, &dlsa, peak, hw.buffer_bytes).unwrap())
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let net = zoo::fig4(1);
    let hw = HardwareConfig::edge();
    let cfg = SearchConfig { effort: 0.05, seed: 5, ..SearchConfig::default() };
    c.bench_function("schedule/soma_fig4_quick", |b| b.iter(|| schedule(&net, &hw, &cfg)));
    c.bench_function("schedule/cocco_fig4_quick", |b| b.iter(|| schedule_cocco(&net, &hw, &cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_objective, bench_end_to_end
}
criterion_main!(benches);
