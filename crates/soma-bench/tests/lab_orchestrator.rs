//! Differential and resume tests for the `lab` orchestrator.
//!
//! * **Differential** — `run_lab` (parallel work-queue + ledger) must
//!   equal the sequential `run_experiment` **bit-for-bit**: same rows,
//!   same envelope bests, same ledger content — for every registry
//!   scenario of the differential workload set at tiny effort. The
//!   property is workload-agnostic (both paths drive the identical
//!   `Scheduler` portfolio per cell), so the set uses the registry's
//!   small figure workloads across *all* presets and batches, plus one
//!   real CNN as a depth probe, keeping the suite fast.
//! * **Resume** — an interrupted run (ledger truncated mid-spec) that is
//!   rerun must produce a ledger byte-identical to an uninterrupted run,
//!   serving the surviving prefix from the ledger (`LabEvent::Cached`,
//!   never `Started`) without re-searching it.

use std::fs;
use std::path::{Path, PathBuf};

use soma_bench::{run_experiment, run_lab, ExperimentRow, LabEvent, Ledger};
use soma_search::{Evaluated, Parallelism, SearchConfig};
use soma_spec::registry::scenarios;
use soma_spec::{read_experiment, ExperimentSpec};

fn tmp(name: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn fresh(name: &str) -> PathBuf {
    let path = tmp(name);
    let _ = fs::remove_file(&path);
    path
}

fn assert_evaluated_eq(cell: &str, which: &str, a: &Evaluated, b: &Evaluated) {
    assert_eq!(a.encoding, b.encoding, "{cell}: {which} encoding");
    assert_eq!(a.report, b.report, "{cell}: {which} report");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{cell}: {which} cost");
}

fn assert_rows_eq(a: &[ExperimentRow], b: &[ExperimentRow]) {
    assert_eq!(a.len(), b.len(), "row counts");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.cell.id, y.cell.id, "cell order");
        assert_evaluated_eq(&x.cell.id, "stage1", &x.outcome.stage1, &y.outcome.stage1);
        assert_evaluated_eq(&x.cell.id, "best", &x.outcome.best, &y.outcome.best);
        assert_eq!(x.outcome.allocator_iters, y.outcome.allocator_iters, "{}", x.cell.id);
        assert_eq!(x.outcome.evals, y.outcome.evals, "{}", x.cell.id);
        assert_eq!(x.outcome.rejected, y.outcome.rejected, "{}", x.cell.id);
    }
}

/// The differential workload set: every registry point of the two small
/// figure networks over the quick batch grid {1, 4} (2 workloads x 2
/// presets x 2 batches = 8 cells; the b16/b64 points cost debug-build
/// minutes for no extra path coverage — tile counts change, code paths
/// do not), plus ResNet-50 on edge at batch 1 as the non-toy probe.
fn differential_spec() -> ExperimentSpec {
    let mut cells: Vec<_> = scenarios()
        .into_iter()
        .filter(|s| (s.workload == "fig2" || s.workload == "fig4") && s.batch <= 4)
        .collect();
    assert_eq!(cells.len(), 8, "two figure workloads x both presets x the quick batch grid");
    cells.push(soma_spec::registry::lookup("resnet50@edge/b1").expect("registry id"));
    ExperimentSpec {
        name: "differential".into(),
        scenarios: cells,
        workloads: vec![],
        hardware: vec![],
        batches: vec![],
        seeds: vec![2025],
        config: SearchConfig { effort: 0.005, seed: 2025, ..SearchConfig::default() },
        parallelism: Parallelism::Sequential,
    }
}

#[test]
fn lab_matches_sequential_run_experiment_bit_for_bit() {
    let spec = differential_spec();
    let sequential = run_experiment(&spec, |_| {});

    let ledger_path = fresh("differential.ledger.jsonl");
    let cold = run_lab(&spec, &ledger_path, |_| {}).expect("cold lab run");
    assert_eq!((cold.hits, cold.misses), (0, spec.cells().len()));
    assert_rows_eq(&sequential, &cold.rows);

    // The persisted ledger holds the same outcomes, row per cell in cell
    // order — "same ledger rows" down to the serialised bits.
    let ledger = Ledger::load(&ledger_path).expect("ledger loads");
    assert_eq!(ledger.len(), sequential.len());
    for (row, led) in sequential.iter().zip(ledger.rows()) {
        assert_eq!(row.cell.id, led.cell);
        assert_eq!(row.cell.workload, led.workload);
        assert_eq!(row.cell.platform, led.platform);
        assert_eq!(row.cell.batch, led.batch);
        let led_out = led.outcome().expect("ledger outcome decodes");
        assert_evaluated_eq(&led.cell, "ledger best", &row.outcome.best, &led_out.best);
        assert_evaluated_eq(&led.cell, "ledger stage1", &row.outcome.stage1, &led_out.stage1);
    }

    // And the warm (all-cached) pass replays the identical rows.
    let warm = run_lab(&spec, &ledger_path, |_| {}).expect("warm lab run");
    assert_eq!((warm.hits, warm.misses), (spec.cells().len(), 0));
    assert_rows_eq(&sequential, &warm.rows);
}

#[test]
fn multithreaded_lab_ledger_is_byte_identical_to_sequential() {
    // The determinism contract of the `Parallelism` API, end to end:
    // an N-thread lab run must produce the *same ledger bytes* as the
    // single-thread golden — not just equal outcomes. Cells finish out
    // of order under Fixed(4); the in-order flusher must still append
    // rows in cell order, and every outcome must be bit-identical.
    let golden_spec = differential_spec();
    let golden_path = fresh("threads-golden.ledger.jsonl");
    let golden = run_lab(&golden_spec, &golden_path, |_| {}).expect("sequential golden run");
    let golden_bytes = fs::read(&golden_path).expect("golden ledger");

    for par in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
        let mut spec = differential_spec();
        spec.parallelism = par;
        let path = fresh(&format!("threads-{par}.ledger.jsonl"));
        let got = run_lab(&spec, &path, |_| {}).expect("parallel lab run");
        assert_eq!((got.hits, got.misses), (0, spec.cells().len()), "{par}: all cold");
        assert_rows_eq(&golden.rows, &got.rows);
        assert_eq!(
            fs::read(&path).expect("parallel ledger"),
            golden_bytes,
            "{par}: ledger bytes diverged from the sequential golden"
        );
    }
}

/// The committed two-scenario campaign spec, as the resume tests use it.
fn fig_pair() -> ExperimentSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/fig_pair_edge.soma");
    let text = fs::read_to_string(path).expect("committed spec exists");
    read_experiment(&text).expect("committed spec parses")
}

#[test]
fn interrupted_run_resumes_to_a_byte_identical_ledger() {
    let spec = fig_pair();

    // Reference: one uninterrupted run.
    let intact_path = fresh("resume-intact.ledger.jsonl");
    let intact = run_lab(&spec, &intact_path, |_| {}).expect("uninterrupted run");
    assert_eq!((intact.hits, intact.misses), (0, 2));
    let intact_bytes = fs::read(&intact_path).expect("intact ledger");

    // "Interrupt" a second run after its first cell: truncate the ledger
    // to its first line (exactly what a kill between cells leaves).
    let resumed_path = fresh("resume-cut.ledger.jsonl");
    run_lab(&spec, &resumed_path, |_| {}).expect("run to interrupt");
    let full = fs::read_to_string(&resumed_path).expect("ledger");
    let first_line_end = full.find('\n').expect("at least one row") + 1;
    fs::write(&resumed_path, &full.as_bytes()[..first_line_end]).expect("truncate");

    // Resume. The surviving cell must be served from the ledger (Cached,
    // never Started => not re-searched), the lost cell re-run.
    let mut events = Vec::new();
    let resumed = run_lab(&spec, &resumed_path, |ev| events.push(ev.clone())).expect("resume");
    assert_eq!((resumed.hits, resumed.misses), (1, 1));
    let first = &spec.cells()[0].id;
    let second = &spec.cells()[1].id;
    assert!(
        events.iter().any(|e| matches!(e, LabEvent::Cached { cell, .. } if cell == first)),
        "surviving cell served from the ledger: {events:?}"
    );
    assert!(
        !events.iter().any(|e| matches!(e, LabEvent::Started { cell } if cell == first)),
        "surviving cell must not be re-searched: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(e, LabEvent::Started { cell } if cell == second)),
        "lost cell re-runs: {events:?}"
    );

    // The resumed ledger is byte-identical to the uninterrupted one.
    assert_eq!(fs::read(&resumed_path).expect("resumed ledger"), intact_bytes);
    assert_rows_eq(&intact.rows, &resumed.rows);
}

#[test]
fn kill_mid_append_resumes_cleanly() {
    // Harsher interruption: the ledger is cut mid-line (a torn write).
    let spec = fig_pair();
    let intact_path = fresh("torn-intact.ledger.jsonl");
    run_lab(&spec, &intact_path, |_| {}).expect("reference run");
    let intact_bytes = fs::read(&intact_path).expect("intact ledger");

    let torn_path = fresh("torn-cut.ledger.jsonl");
    run_lab(&spec, &torn_path, |_| {}).expect("run to tear");
    let full = fs::read(&torn_path).expect("ledger");
    let first_line_end = full.iter().position(|&b| b == b'\n').expect("row") + 1;
    // Keep the first complete row plus half of the second.
    let cut = first_line_end + (full.len() - first_line_end) / 2;
    fs::write(&torn_path, &full[..cut]).expect("tear");

    let resumed = run_lab(&spec, &torn_path, |_| {}).expect("resume after tear");
    assert_eq!((resumed.hits, resumed.misses), (1, 1), "torn row dropped, complete row kept");
    assert_eq!(fs::read(&torn_path).expect("repaired ledger"), intact_bytes);
}

#[test]
fn rerunning_a_finished_spec_does_zero_search_work() {
    let spec = fig_pair();
    let path = fresh("replay.ledger.jsonl");
    run_lab(&spec, &path, |_| {}).expect("cold run");
    let bytes = fs::read(&path).expect("ledger");

    let mut events = Vec::new();
    let warm = run_lab(&spec, &path, |ev| events.push(ev.clone())).expect("warm run");
    assert_eq!((warm.hits, warm.misses), (2, 0), "all cells are ledger hits");
    assert!(!events.iter().any(|e| matches!(e, LabEvent::Started { .. })), "{events:?}");
    assert!(!events.iter().any(|e| matches!(e, LabEvent::Finished { .. })), "{events:?}");
    assert_eq!(
        events.iter().filter(|e| matches!(e, LabEvent::Cached { .. })).count(),
        2,
        "{events:?}"
    );
    assert_eq!(fs::read(&path).expect("ledger"), bytes, "a replay never writes");
}
