//! End-to-end pins of the `SOMA_*` knob surface through
//! [`RunConfig::from_env`]: junk values must be **hard errors** with
//! exact, actionable messages — never silent fallbacks that mislabel a
//! results CSV.
//!
//! Everything lives in one `#[test]` because the process environment is
//! global: the libtest harness runs tests on concurrent threads, and
//! two tests mutating `SOMA_THREADS` would race. One test, sequential
//! cases, environment restored at the end.

use soma_bench::RunConfig;
use soma_search::Parallelism;

/// Runs `f` with `SOMA_THREADS` set to `value`, restoring the previous
/// state afterwards so a failing case cannot poison later ones.
fn with_threads(value: Option<&str>, f: impl FnOnce()) {
    let saved = std::env::var_os("SOMA_THREADS");
    match value {
        Some(v) => std::env::set_var("SOMA_THREADS", v),
        None => std::env::remove_var("SOMA_THREADS"),
    }
    f();
    match saved {
        Some(v) => std::env::set_var("SOMA_THREADS", v),
        None => std::env::remove_var("SOMA_THREADS"),
    }
}

#[test]
fn soma_threads_junk_is_a_hard_error_with_an_exact_message() {
    // Junk values: the error names the variable, quotes the raw value
    // verbatim (untrimmed), and states the accepted grammar.
    for junk in ["junk", "0", "-1", "1e2", "fast", "0x4", ""] {
        with_threads(Some(junk), || {
            let err = RunConfig::from_env().expect_err(junk);
            assert_eq!(
                err.to_string(),
                format!(
                    "invalid SOMA_THREADS={junk:?}: expected \
                     `auto`, `seq`, or a thread count >= 1"
                )
            );
        });
    }

    // The raw value lands in the message even when only whitespace is
    // wrong around an otherwise-bad token.
    with_threads(Some("  zoom  "), || {
        let err = RunConfig::from_env().expect_err("padded junk");
        assert_eq!(
            err.to_string(),
            "invalid SOMA_THREADS=\"  zoom  \": expected \
             `auto`, `seq`, or a thread count >= 1"
        );
    });

    // Well-formed values parse to the documented policies, trimmed.
    let cases = [
        ("auto", Parallelism::Auto),
        ("seq", Parallelism::Sequential),
        ("1", Parallelism::Sequential),
        (" 4 ", Parallelism::Fixed(4)),
    ];
    for (value, want) in cases {
        with_threads(Some(value), || {
            let rc = RunConfig::from_env().expect(value);
            assert_eq!(rc.threads, want, "SOMA_THREADS={value:?}");
        });
    }

    // Absent keeps the default.
    with_threads(None, || {
        assert_eq!(RunConfig::from_env().unwrap().threads, Parallelism::Auto);
    });
}
