//! Golden-file tests for the `run` and `lab` binaries on committed
//! `specs/*.soma`: stdout CSV and the lab run ledger are compared
//! **byte-for-byte** against snapshots under `tests/golden/`.
//!
//! Regenerate the snapshots after an intentional behaviour change with:
//!
//! ```sh
//! SOMA_BLESS=1 cargo test -p soma-bench --test golden_cli
//! ```
//!
//! The two binaries must agree: for the same spec, `lab`'s CSV is
//! compared against the *same* golden file as `run`'s — the orchestrator
//! adds caching and parallelism, never different numbers. And a warm
//! `lab` rerun (100 % ledger hits, enforced via `--require-hits`) must
//! reproduce the cold CSV byte-for-byte from the ledger alone.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_spec(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs").join(name)
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn tmp(name: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn bless() -> bool {
    std::env::var_os("SOMA_BLESS").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Runs a harness binary with a scrubbed `SOMA_*` environment.
fn run_bin(exe: &str, args: &[&str]) -> (String, String, bool) {
    let mut cmd = Command::new(exe);
    cmd.args(args);
    for knob in ["SOMA_EFFORT", "SOMA_SEED", "SOMA_FULL", "SOMA_THREADS", "SOMA_WORKLOAD"] {
        cmd.env_remove(knob);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"));
    (
        String::from_utf8(out.stdout).expect("binary stdout is UTF-8"),
        String::from_utf8(out.stderr).expect("binary stderr is UTF-8"),
        out.status.success(),
    )
}

/// Compares `got` against the committed snapshot (or regenerates it
/// under `SOMA_BLESS=1`).
fn assert_golden(got: &[u8], golden: &str) {
    let path = golden_path(golden);
    if bless() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, got).expect("bless golden");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let want = fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with SOMA_BLESS=1 cargo test -p soma-bench \
             --test golden_cli",
            path.display()
        )
    });
    assert!(
        got == want.as_slice(),
        "{golden} drifted from its committed snapshot.\n--- committed ---\n{}\n--- got ---\n{}\n\
         If the change is intentional, rebless with SOMA_BLESS=1.",
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(got),
    );
}

/// One spec through both binaries: `run` CSV matches the golden, `lab`
/// cold CSV matches the *same* golden, the ledger matches its golden,
/// and a warm `lab` pass is 100 % hits with identical output.
fn check_spec(spec_file: &str, csv_golden: &str, ledger_golden: &str) {
    let spec = repo_spec(spec_file);
    let spec = spec.to_str().expect("utf-8 path");

    let (run_csv, _, ok) = run_bin(env!("CARGO_BIN_EXE_run"), &[spec]);
    assert!(ok, "run failed on {spec_file}");
    assert_golden(run_csv.as_bytes(), csv_golden);

    let ledger = tmp(&format!("golden-{spec_file}.ledger.jsonl"));
    let _ = fs::remove_file(&ledger);
    let ledger_arg = ledger.to_str().expect("utf-8 path");
    let (cold_csv, _, ok) = run_bin(env!("CARGO_BIN_EXE_lab"), &[spec, "--ledger", ledger_arg]);
    assert!(ok, "lab (cold) failed on {spec_file}");
    assert_eq!(cold_csv, run_csv, "{spec_file}: lab CSV != run CSV");
    assert_golden(&fs::read(&ledger).expect("ledger written"), ledger_golden);

    let (warm_csv, warm_err, ok) =
        run_bin(env!("CARGO_BIN_EXE_lab"), &[spec, "--ledger", ledger_arg, "--require-hits"]);
    assert!(ok, "lab (warm) was not 100% hits on {spec_file}:\n{warm_err}");
    assert_eq!(warm_csv, run_csv, "{spec_file}: warm lab CSV != cold CSV");
    assert_golden(&fs::read(&ledger).expect("ledger intact"), ledger_golden);

    // A cold 4-thread pass must hit the *same* goldens: thread policy is
    // wall-clock only, down to the ledger bytes.
    let t4 = tmp(&format!("golden-{spec_file}.t4.ledger.jsonl"));
    let _ = fs::remove_file(&t4);
    let t4_arg = t4.to_str().expect("utf-8 path");
    let (t4_csv, _, ok) =
        run_bin(env!("CARGO_BIN_EXE_lab"), &[spec, "--ledger", t4_arg, "--threads", "4"]);
    assert!(ok, "lab (cold, --threads 4) failed on {spec_file}");
    assert_eq!(t4_csv, run_csv, "{spec_file}: 4-thread lab CSV != run CSV");
    assert_golden(&fs::read(&t4).expect("t4 ledger written"), ledger_golden);
}

#[test]
fn golden_fig2_edge() {
    check_spec("fig2_edge.soma", "fig2_edge.csv", "fig2_edge.ledger.jsonl");
}

#[test]
fn golden_fig_pair_edge() {
    check_spec("fig_pair_edge.soma", "fig_pair_edge.csv", "fig_pair_edge.ledger.jsonl");
}

/// `--require-hits` on a cold ledger must fail with exit status 3 — the
/// contract CI's lab-smoke replay gate leans on.
#[test]
fn require_hits_fails_cold() {
    let spec = repo_spec("fig2_edge.soma");
    let ledger = tmp("golden-require-hits-cold.jsonl");
    let _ = fs::remove_file(&ledger);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lab"));
    cmd.args([spec.to_str().unwrap(), "--ledger", ledger.to_str().unwrap(), "--require-hits"]);
    let out = cmd.output().expect("spawn lab");
    assert_eq!(out.status.code(), Some(3), "cold --require-hits must exit 3");
}
