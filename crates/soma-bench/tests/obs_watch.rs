//! Observability end-to-end: the `watch` binary's headless replay frame
//! and machine-readable campaign summary over the **committed** golden
//! ledger are pinned byte-for-byte, and a live campaign (events observed
//! as `run_lab` emits them) must render exactly the same final frame as
//! an offline replay of the ledger it wrote.
//!
//! Regenerate the snapshots after an intentional behaviour change with:
//!
//! ```sh
//! SOMA_BLESS=1 cargo test -p soma-bench --test obs_watch
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use soma_bench::lab::Ledger;
use soma_bench::run_lab;
use soma_obs::WatchModel;
use soma_spec::read_experiment;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn tmp(name: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn bless() -> bool {
    std::env::var_os("SOMA_BLESS").is_some_and(|v| v != "0" && !v.is_empty())
}

fn assert_golden(got: &[u8], golden: &str) {
    let path = golden_path(golden);
    if bless() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, got).expect("bless golden");
        eprintln!("[golden] blessed {}", path.display());
        return;
    }
    let want = fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with SOMA_BLESS=1 cargo test -p soma-bench \
             --test obs_watch",
            path.display()
        )
    });
    assert!(
        got == want.as_slice(),
        "{golden} drifted from its committed snapshot.\n--- committed ---\n{}\n--- got ---\n{}\n\
         If the change is intentional, rebless with SOMA_BLESS=1.",
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(got),
    );
}

/// The committed campaign ledger every offline test replays.
fn committed_ledger() -> PathBuf {
    golden_path("fig_pair_edge.ledger.jsonl")
}

fn watch(args: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_watch"));
    cmd.args(args);
    cmd.output().expect("spawn watch")
}

/// The headless replay frame over the committed ledger is byte-stable.
#[test]
fn watch_render_is_golden() {
    let ledger = committed_ledger();
    let out = watch(&[ledger.to_str().unwrap(), "--headless", "--width", "60"]);
    assert!(out.status.success(), "watch failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_golden(&out.stdout, "fig_pair_edge.watch.txt");
}

/// `watch --headless --summary` over the committed ledger produces the
/// byte-stable `specs/SUMMARY.md` artifact — the CI `obs-smoke` gate's
/// contract.
#[test]
fn watch_summary_is_golden() {
    let ledger = committed_ledger();
    let out_path = tmp("obs-watch-summary.json");
    let _ = fs::remove_file(&out_path);
    let out =
        watch(&[ledger.to_str().unwrap(), "--headless", "--summary", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "watch failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_golden(&fs::read(&out_path).expect("summary written"), "fig_pair_edge.summary.json");
}

/// The trend gate: a summary checked against itself passes (exit 0); a
/// baseline whose best costs are far better than the current run's
/// fails with exit 5 and a violation per regressed scenario.
#[test]
fn trend_gate_flags_regressions_only() {
    let ledger = committed_ledger();
    let current = tmp("obs-watch-gate.json");
    let _ = fs::remove_file(&current);
    let out =
        watch(&[ledger.to_str().unwrap(), "--headless", "--summary", current.to_str().unwrap()]);
    assert!(out.status.success());

    // Self-comparison: zero drift, gate passes even at zero tolerance.
    let out = watch(&[
        ledger.to_str().unwrap(),
        "--headless",
        "--check-baseline",
        current.to_str().unwrap(),
        "--tolerance",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    // Doctored baseline: every best cost divided by 10 — the current
    // run now "regresses" by 10x, far beyond a 5% tolerance.
    let text = fs::read_to_string(&current).unwrap();
    let doctored_text = regex_free_scale_costs(&text);
    let doctored = tmp("obs-watch-gate-doctored.json");
    fs::write(&doctored, doctored_text).unwrap();
    let out = watch(&[
        ledger.to_str().unwrap(),
        "--headless",
        "--check-baseline",
        doctored.to_str().unwrap(),
        "--tolerance",
        "0.05",
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("trend gate"), "{err}");
    assert!(err.contains("fig2@edge/b1"), "{err}");
}

/// Rewrites every best-cost distribution in the summary to a tenth of
/// its value via the parsed struct — no string surgery, reusing the
/// crate's own JSON round-trip.
fn regex_free_scale_costs(text: &str) -> String {
    fn scale(d: &mut soma_obs::Dist) {
        for f in [&mut d.min, &mut d.max, &mut d.mean, &mut d.p50, &mut d.p90, &mut d.p99] {
            *f /= 10.0;
        }
    }
    let v = serde::json::parse(text.trim()).expect("summary parses");
    let mut s = soma_obs::CampaignSummary::from_json(&v).expect("summary round-trips");
    scale(&mut s.best_cost);
    for scenario in &mut s.scenarios {
        scale(&mut scenario.best_cost);
    }
    format!("{}\n", s.to_string_stable())
}

/// Drill-down: `watch --gantt <cell-id>` renders the cell's execution
/// graph straight from its ledger row.
#[test]
fn gantt_drilldown_renders_from_the_ledger() {
    let ledger = committed_ledger();
    let out = watch(&[ledger.to_str().unwrap(), "--gantt", "fig2@edge/b1", "--width", "60"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let chart = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(chart.contains("latency:"), "{chart}");
    assert!(chart.contains("DRAM"), "{chart}");
    assert!(chart.contains("COMPUTE"), "{chart}");
    assert!(chart.contains("BUFFER"), "{chart}");

    // A unique hash prefix resolves to the same row.
    let rows = Ledger::load(&ledger).unwrap();
    let hash = rows.rows().iter().find(|r| r.cell == "fig2@edge/b1").unwrap().hash.clone();
    let by_hash = watch(&[ledger.to_str().unwrap(), "--gantt", &hash[..8], "--width", "60"]);
    assert!(by_hash.status.success());
    assert_eq!(by_hash.stdout, out.stdout, "hash drill == id drill");

    // An unknown query is a usage error, not a panic.
    let missing = watch(&[ledger.to_str().unwrap(), "--gantt", "nope@nowhere"]);
    assert_eq!(missing.status.code(), Some(2));
}

/// A live campaign observed event-by-event renders exactly the same
/// final frame as an offline replay of the ledger it wrote — the
/// equivalence that makes `watch --follow` and one-shot replay
/// interchangeable after the fact.
#[test]
fn live_event_stream_matches_offline_replay() {
    let spec_text = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/fig_pair_edge.soma"),
    )
    .expect("committed spec");
    let spec = read_experiment(&spec_text).expect("spec parses");
    let ledger_path = tmp("obs-watch-live.jsonl");
    let _ = fs::remove_file(&ledger_path);

    let mut live = WatchModel::new();
    run_lab(&spec, &ledger_path, |ev| live.observe(ev)).expect("lab runs");

    let ledger = Ledger::load(&ledger_path).expect("ledger written");
    let mut replay = WatchModel::new();
    for row in ledger.rows() {
        replay.observe_row(row);
    }

    assert_eq!(live.render(60), replay.render(60), "live frame != replay frame");
    assert_eq!(live.cell_outcomes(), replay.cell_outcomes());
    // Only the hit-rate provenance differs (a cold live run has zero
    // cached cells, as does a replay), so the summaries agree too.
    let health = ledger.health();
    assert_eq!(
        live.summary("fig-pair-edge", health, None).to_string_stable(),
        replay.summary("fig-pair-edge", health, None).to_string_stable(),
    );
}
