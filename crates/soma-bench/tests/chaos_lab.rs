//! Chaos storm over the lab orchestrator: a whole campaign driven under
//! seeded CHAOS faults (cell panics, slow cells, torn/corrupt/failed
//! ledger appends) until it converges — proving the ISSUE's acceptance
//! bar: **a panic in one cell never aborts the campaign, no
//! previously-flushed row is ever lost, and the converged ledger is
//! row-identical to a never-faulted run.**
//!
//! Deterministic end to end: `threads seq` pins the fault schedule to
//! cell order, and the [`FaultPlan`] seed pins every decision.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use soma_bench::lab::{cell_key, run_lab_chaos, run_lab_until, Ledger};
use soma_spec::fault::{FaultConfig, FaultPlan};
use soma_spec::read_experiment;

const SPEC: &str = "soma-experiment v1\nname chaos\n\
                    scenario fig4@edge/b1\nscenario fig4@edge/b2\nscenario fig2@edge/b1\n\
                    seeds 11\neffort 0.01\nthreads seq\nend\n";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soma-chaos-lab");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn chaos_campaigns_converge_to_the_faultless_ledger() {
    let spec = read_experiment(SPEC).unwrap();
    let stop = AtomicBool::new(false);

    // The reference: the same spec, never faulted.
    let ref_path = tmp("reference.jsonl");
    let _ = fs::remove_file(&ref_path);
    let reference = run_lab_until(&spec, &ref_path, &stop, |_| {}).unwrap();
    assert_eq!((reference.hits, reference.misses, reference.failed), (0, 3, 0));
    let reference = Ledger::load(&ref_path).unwrap();

    let mut saw_failure = false;
    for plan_seed in [7u64, 0xC0FFEE] {
        let path = tmp(&format!("storm-{plan_seed}.jsonl"));
        let qpath = soma_spec::quarantine_path(&path);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
        let plan = Arc::new(FaultPlan::seeded(plan_seed, FaultConfig::CHAOS));

        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds <= 60, "seed {plan_seed} never converged");
            match run_lab_chaos(&spec, &path, &stop, Some(Arc::clone(&plan)), |_| {}) {
                Ok(summary) => {
                    saw_failure |= summary.failed > 0;
                    // Panic isolation: a failed cell never aborts the
                    // campaign — the run still completes (not stopped).
                    assert!(!summary.stopped, "seed {plan_seed}: chaos must not stop a run");
                    if summary.failed == 0 && summary.hits == 3 {
                        break; // fully cached: converged
                    }
                }
                // Torn/failed appends surface as I/O errors; the next
                // round's load repairs the tail and retries.
                Err(e) => assert!(e.to_string().contains("injected fault"), "{e}"),
            }
        }
        assert!(plan.injected() > 0, "seed {plan_seed} injected nothing");

        // Converged means *identical*: every cell's row matches the
        // never-faulted ledger byte for byte (order may differ — failed
        // cells fill their slots on later rounds).
        let ledger = Ledger::load(&path).unwrap();
        assert!(ledger.health().is_clean(), "{:?}", ledger.health());
        for cell in spec.cells() {
            let key = cell_key(&cell, &spec.config, &spec.seeds);
            let got = ledger.lookup(&key).unwrap_or_else(|| panic!("{} missing", cell.id));
            let want = reference.lookup(&key).expect("reference has every cell");
            assert_eq!(got.to_line(), want.to_line(), "{} drifted under chaos", cell.id);
        }

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&qpath);
    }
    assert!(saw_failure, "no seed exercised panic isolation");
    let _ = fs::remove_file(&ref_path);
}

/// A previously-flushed row survives any later chaos round: rows the
/// first (faultless) run wrote are byte-identical after storms of
/// faulted reruns, because hits never rewrite and recovery never drops
/// a valid row.
#[test]
fn previously_flushed_rows_survive_later_chaos_rounds() {
    let spec = read_experiment(SPEC).unwrap();
    let stop = AtomicBool::new(false);
    let path = tmp("survive.jsonl");
    let qpath = soma_spec::quarantine_path(&path);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&qpath);

    run_lab_until(&spec, &path, &stop, |_| {}).unwrap();
    let before: Vec<String> =
        Ledger::load(&path).unwrap().rows().iter().map(|r| r.to_line()).collect();
    assert_eq!(before.len(), 3);

    for plan_seed in 0..8u64 {
        let plan = Arc::new(FaultPlan::seeded(plan_seed, FaultConfig::CHAOS));
        // Everything is cached, so no searches run and no appends happen:
        // the chaos plan has nothing to corrupt, and the rows must ride
        // through untouched.
        let summary = run_lab_chaos(&spec, &path, &stop, Some(Arc::clone(&plan)), |_| {}).unwrap();
        assert_eq!((summary.hits, summary.misses, summary.failed), (3, 0, 0));
    }
    let after: Vec<String> =
        Ledger::load(&path).unwrap().rows().iter().map(|r| r.to_line()).collect();
    assert_eq!(before, after, "cached rounds must never disturb flushed rows");

    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&qpath);
}
