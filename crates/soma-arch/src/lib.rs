//! Accelerator hardware configuration and energy model.
//!
//! Models the generic large-scale DNN accelerator template of the paper's
//! Sec. II / Fig. 1: several cores (each a PE array plus a vector unit and
//! private L0 buffers) sharing a Global Buffer (GBUF), connected to DRAM.
//!
//! Two presets reproduce the paper's evaluation platforms (Sec. VI-A1):
//! [`HardwareConfig::edge`] (16 TOPS, 8 MB, 16 GB/s) and
//! [`HardwareConfig::cloud`] (128 TOPS, 32 MB, 128 GB/s), both at 1 GHz.

pub mod config;
pub mod energy;

pub use config::{HardwareConfig, HardwareConfigBuilder};
pub use energy::EnergyModel;
