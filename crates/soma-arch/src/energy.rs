//! Unit-energy model.
//!
//! The paper obtains unit energies from RTL synthesis of their commercial
//! accelerator (TSMC 12 nm, 1 GHz). We substitute published-order-of-
//! magnitude constants for the same technology class; every figure in the
//! paper reports *normalised* energy, and all compared schemes share these
//! constants, so ratios are preserved (see DESIGN.md, substitutions).

use serde::{Deserialize, Serialize};

/// Energy cost per unit of work, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One INT8 multiply-accumulate (PE array).
    pub mac_pj: f64,
    /// One element of vector-unit work.
    pub vector_pj: f64,
    /// One byte read from or written to the GBUF.
    pub gbuf_pj_per_byte: f64,
    /// One byte moved between a core's L0 and its datapath.
    pub l0_pj_per_byte: f64,
    /// One byte read from DRAM.
    pub dram_read_pj_per_byte: f64,
    /// One byte written to DRAM.
    pub dram_write_pj_per_byte: f64,
}

impl EnergyModel {
    /// TSMC-12nm-class constants (the paper's default technology).
    /// INT8 MACs at this node cost ~0.1 pJ; SRAM accesses sit an order of
    /// magnitude above datapath ops and DRAM an order above SRAM — the
    /// hierarchy every published survey reports, and the property the
    /// paper's energy results rely on.
    pub fn tsmc12() -> Self {
        Self {
            mac_pj: 0.12,
            vector_pj: 0.08,
            gbuf_pj_per_byte: 0.7,
            l0_pj_per_byte: 0.06,
            dram_read_pj_per_byte: 8.0,
            dram_write_pj_per_byte: 9.0,
        }
    }

    /// Energy of a DRAM transfer, given read and written byte counts.
    pub fn dram(&self, read_bytes: u64, write_bytes: u64) -> f64 {
        read_bytes as f64 * self.dram_read_pj_per_byte
            + write_bytes as f64 * self.dram_write_pj_per_byte
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::tsmc12()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_energy_splits_read_write() {
        let e = EnergyModel::tsmc12();
        assert_eq!(e.dram(10, 0), 80.0);
        assert_eq!(e.dram(0, 10), 90.0);
        assert_eq!(e.dram(10, 10), 170.0);
    }

    #[test]
    fn dram_is_much_pricier_than_gbuf() {
        let e = EnergyModel::default();
        assert!(e.dram_read_pj_per_byte > 5.0 * e.gbuf_pj_per_byte);
        assert!(e.gbuf_pj_per_byte > e.l0_pj_per_byte);
    }
}
