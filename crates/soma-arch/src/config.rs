//! Hardware configuration of the accelerator template.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;

/// Complete description of one accelerator instance.
///
/// All rates are expressed per clock cycle so the simulator can work in
/// integer cycles. Construct via the presets or [`HardwareConfig::builder`].
///
/// ```
/// use soma_arch::HardwareConfig;
///
/// let hw = HardwareConfig::edge();
/// assert_eq!(hw.peak_tops(), 16.0);
/// assert_eq!(hw.buffer_bytes, 8 << 20);
/// let big = HardwareConfig::builder().like(&hw).buffer_mib(32).build();
/// assert_eq!(big.buffer_bytes, 32 << 20);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Configuration name (for reports).
    pub name: String,
    /// Clock frequency in Hz (paper default: 1 GHz).
    pub freq_hz: u64,
    /// Number of cores sharing the GBUF.
    pub cores: u32,
    /// Peak multiply-accumulates per cycle across all cores
    /// (`2 * macs_per_cycle * freq = peak ops/s`).
    pub macs_per_cycle: u64,
    /// Channel-parallel lanes of each core's PE array (KC mapping): output
    /// channels processed concurrently.
    pub kc_parallel: u32,
    /// Spatial positions each core processes concurrently
    /// (`macs_per_cycle = cores * kc_parallel * spatial_parallel`).
    pub spatial_parallel: u32,
    /// Vector-unit throughput in elements per cycle (all cores combined).
    pub vector_lanes: u64,
    /// Global buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// GBUF bandwidth available to the cores, bytes per cycle.
    pub gbuf_bytes_per_cycle: u64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: u64,
    /// Aggregate weight-L0 capacity in bytes.
    pub wl0_bytes: u64,
    /// Aggregate activation-L0 capacity in bytes.
    pub al0_bytes: u64,
    /// Unit-energy model.
    pub energy: EnergyModel,
}

impl HardwareConfig {
    /// Starts building a configuration from scratch.
    pub fn builder() -> HardwareConfigBuilder {
        HardwareConfigBuilder::default()
    }

    /// The paper's edge platform: 16 TOPS, 8 MB GBUF, 16 GB/s DRAM, 1 GHz.
    pub fn edge() -> Self {
        HardwareConfigBuilder::default()
            .name("edge-16tops")
            .tops(16.0)
            .cores(8)
            .buffer_mib(8)
            .dram_gbps(16.0)
            .build()
    }

    /// The paper's cloud platform: 128 TOPS, 32 MB GBUF, 128 GB/s DRAM.
    pub fn cloud() -> Self {
        HardwareConfigBuilder::default()
            .name("cloud-128tops")
            .tops(128.0)
            .cores(32)
            .buffer_mib(32)
            .dram_gbps(128.0)
            .build()
    }

    /// Peak throughput in TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.macs_per_cycle as f64 * self.freq_hz as f64 / 1e12
    }

    /// Peak operations per cycle (2 ops per MAC).
    pub fn peak_ops_per_cycle(&self) -> u64 {
        2 * self.macs_per_cycle
    }

    /// Cycles to transfer `bytes` over DRAM (ceiling).
    pub fn dram_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.dram_bytes_per_cycle.max(1))
    }

    /// Cycles to move `bytes` between GBUF and the cores (ceiling).
    pub fn gbuf_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.gbuf_bytes_per_cycle.max(1))
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }
}

/// Builder for [`HardwareConfig`]; defaults follow the edge preset scale.
#[derive(Debug, Clone)]
pub struct HardwareConfigBuilder {
    cfg: HardwareConfig,
}

impl Default for HardwareConfigBuilder {
    fn default() -> Self {
        let cores = 8;
        Self {
            cfg: HardwareConfig {
                name: "custom".into(),
                freq_hz: 1_000_000_000,
                cores,
                macs_per_cycle: 8_192,
                kc_parallel: 32,
                spatial_parallel: 32,
                vector_lanes: 2_048,
                buffer_bytes: 8 << 20,
                gbuf_bytes_per_cycle: 512,
                dram_bytes_per_cycle: 16,
                wl0_bytes: (8 * 64) << 10,
                al0_bytes: (8 * 64) << 10,
                energy: EnergyModel::tsmc12(),
            },
        }
    }
}

impl HardwareConfigBuilder {
    /// Copies every field from an existing configuration.
    pub fn like(mut self, other: &HardwareConfig) -> Self {
        self.cfg = other.clone();
        self
    }

    /// Sets the configuration name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Sets peak throughput in TOPS (at the configured frequency) and
    /// derives the PE-array parallelism split.
    pub fn tops(mut self, tops: f64) -> Self {
        let macs = (tops * 1e12 / 2.0 / self.cfg.freq_hz as f64).round() as u64;
        self.cfg.macs_per_cycle = macs.max(1);
        self.rebalance();
        self
    }

    /// Sets the core count and rebalances per-core parallelism.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cfg.cores = cores.max(1);
        self.rebalance();
        self
    }

    /// Sets GBUF capacity in MiB.
    pub fn buffer_mib(mut self, mib: u64) -> Self {
        self.cfg.buffer_bytes = mib << 20;
        self
    }

    /// Sets GBUF capacity in bytes.
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.cfg.buffer_bytes = bytes;
        self
    }

    /// Sets DRAM bandwidth in GB/s (at 1 GHz this equals bytes/cycle).
    pub fn dram_gbps(mut self, gbps: f64) -> Self {
        let bpc = (gbps * 1e9 / self.cfg.freq_hz as f64).round() as u64;
        self.cfg.dram_bytes_per_cycle = bpc.max(1);
        self
    }

    /// Sets the energy model.
    pub fn energy(mut self, e: EnergyModel) -> Self {
        self.cfg.energy = e;
        self
    }

    /// Splits `macs_per_cycle` into cores x kc x spatial and scales the
    /// vector unit and GBUF/L0 budgets with compute.
    fn rebalance(&mut self) {
        let per_core = (self.cfg.macs_per_cycle / u64::from(self.cfg.cores)).max(1);
        // Favour a square-ish split, KC first (common commercial layout).
        let mut kc = 1u64;
        while kc * kc < per_core && kc < 128 {
            kc *= 2;
        }
        let spatial = (per_core / kc).max(1);
        self.cfg.kc_parallel = kc as u32;
        self.cfg.spatial_parallel = spatial as u32;
        self.cfg.vector_lanes = (self.cfg.macs_per_cycle / 4).max(64);
        // GBUF must feed the array: 1 byte per 16 MACs plus margin.
        self.cfg.gbuf_bytes_per_cycle = (self.cfg.macs_per_cycle / 16).max(64);
        self.cfg.wl0_bytes = u64::from(self.cfg.cores) * (64 << 10);
        self.cfg.al0_bytes = u64::from(self.cfg.cores) * (64 << 10);
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any capacity or rate is zero (builder misuse).
    pub fn build(self) -> HardwareConfig {
        let c = &self.cfg;
        assert!(c.buffer_bytes > 0, "buffer must be non-empty");
        assert!(c.dram_bytes_per_cycle > 0, "DRAM bandwidth must be non-zero");
        assert!(c.macs_per_cycle > 0, "compute must be non-zero");
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let e = HardwareConfig::edge();
        assert_eq!(e.peak_tops(), 16.0);
        assert_eq!(e.buffer_bytes, 8 << 20);
        assert_eq!(e.dram_bytes_per_cycle, 16); // 16 GB/s at 1 GHz
        let c = HardwareConfig::cloud();
        assert_eq!(c.peak_tops(), 128.0);
        assert_eq!(c.buffer_bytes, 32 << 20);
        assert_eq!(c.dram_bytes_per_cycle, 128);
    }

    #[test]
    fn parallelism_product_matches_peak() {
        for hw in [HardwareConfig::edge(), HardwareConfig::cloud()] {
            let product =
                u64::from(hw.cores) * u64::from(hw.kc_parallel) * u64::from(hw.spatial_parallel);
            // Split is power-of-two rounded; must be within 2x of peak.
            assert!(product <= hw.macs_per_cycle);
            assert!(product * 2 > hw.macs_per_cycle, "{product} vs {}", hw.macs_per_cycle);
        }
    }

    #[test]
    fn dram_cycles_ceil() {
        let hw = HardwareConfig::edge();
        assert_eq!(hw.dram_cycles(0), 0);
        assert_eq!(hw.dram_cycles(1), 1);
        assert_eq!(hw.dram_cycles(16), 1);
        assert_eq!(hw.dram_cycles(17), 2);
    }

    #[test]
    fn builder_sweep_axes() {
        let base = HardwareConfig::edge();
        for mib in [2u64, 4, 8, 16, 32, 64] {
            let hw = HardwareConfig::builder().like(&base).buffer_mib(mib).build();
            assert_eq!(hw.buffer_bytes, mib << 20);
            assert_eq!(hw.dram_bytes_per_cycle, base.dram_bytes_per_cycle);
        }
        for gbps in [4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            let hw = HardwareConfig::builder().like(&base).dram_gbps(gbps).build();
            assert_eq!(hw.dram_bytes_per_cycle, gbps as u64);
        }
    }
}
