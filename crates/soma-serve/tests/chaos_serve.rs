//! Chaos suite for the serve daemon: injected connection drops, search
//! panics, deadlines, client disconnects and pre-corrupted ledgers —
//! every failure must be **typed, counted, isolated, and recoverable by
//! a retrying client**, and results must stay bit-identical to a
//! fault-free daemon's.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use soma_search::record::outcome_to_string;
use soma_serve::{
    start, Client, ClientError, Listen, RejectReason, RetryPolicy, ServerConfig, SubmitRequest,
    Target,
};
use soma_spec::fault::{site, Fault, FaultConfig, FaultPlan};
use soma_spec::quarantine_path;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soma-chaos-serve");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

fn unix_listen(name: &str) -> Listen {
    Listen::Unix(tmp(&format!("{name}.sock")))
}

fn quick(id: &str, seed: u64, deadline_ms: Option<u64>) -> SubmitRequest {
    SubmitRequest {
        id: id.into(),
        target: Target::Scenario("fig4@edge/b1".into()),
        seeds: vec![seed],
        effort: Some(0.01),
        progress: false,
        deadline_ms,
    }
}

fn server(name: &str, faults: Option<Arc<FaultPlan>>) -> (soma_serve::ServerHandle, PathBuf) {
    let ledger = tmp(&format!("{name}.jsonl"));
    let _ = fs::remove_file(&ledger);
    let _ = fs::remove_file(quarantine_path(&ledger));
    let handle = start(ServerConfig { faults, ..ServerConfig::new(unix_listen(name), &ledger) })
        .expect("daemon starts");
    (handle, ledger)
}

#[test]
fn deadline_expiring_mid_search_is_a_typed_reject_and_counted() {
    // A scripted stall makes the first search outlive its deadline
    // deterministically; the second invocation is fault-free.
    let plan =
        Arc::new(FaultPlan::scripted([(site::SERVE_SEARCH, 0, Fault::Slow { millis: 400 })]));
    let (handle, _ledger) = server("deadline-mid", Some(plan));
    let mut client = Client::connect(handle.listen()).unwrap();

    let sub = client.submit(quick("slow", 1, Some(50))).unwrap();
    let (reason, detail) = sub.rejection.expect("must be rejected");
    assert_eq!(reason, RejectReason::DeadlineExceeded);
    assert!(detail.contains("expired mid-search"), "{detail}");
    assert!(sub.outcome.is_none());

    let stats = handle.stats();
    assert_eq!(stats.cancelled, 1, "a mid-search deadline counts as a cancellation");
    assert_eq!(stats.served, 0);
    assert_eq!(stats.ledger_rows, 0, "partial work is discarded, never cached");

    // Same request, no deadline: the retry succeeds on the same daemon.
    let again = client.submit(quick("retry", 1, None)).unwrap();
    assert!(again.succeeded(), "{:?}", again.rejection);
    handle.shutdown();
}

#[test]
fn cache_hits_beat_any_deadline_but_cold_zero_deadlines_are_refused_up_front() {
    let (handle, _ledger) = server("deadline-zero", None);
    let mut client = Client::connect(handle.listen()).unwrap();

    // Cold + already-expired deadline: refused before admission, and
    // that is a refusal, not a mid-flight cancellation.
    let sub = client.submit(quick("cold", 2, Some(0))).unwrap();
    let (reason, detail) = sub.rejection.expect("must be rejected");
    assert_eq!(reason, RejectReason::DeadlineExceeded);
    assert!(detail.contains("before admission"), "{detail}");
    assert_eq!(handle.stats().cancelled, 0);

    // Prime the cache, then repeat with the same impossible deadline:
    // the warm path answers anyway — a hit costs nothing.
    let cold = client.submit(quick("prime", 2, None)).unwrap();
    assert!(cold.succeeded());
    let warm = client.submit(quick("warm", 2, Some(0))).unwrap();
    assert!(warm.cached, "a cache hit beats any deadline");
    assert_eq!(
        outcome_to_string(warm.outcome.as_ref().unwrap()),
        outcome_to_string(cold.outcome.as_ref().unwrap()),
    );
    handle.shutdown();
}

#[test]
fn injected_search_panic_is_isolated_counted_and_the_daemon_survives() {
    let plan = Arc::new(FaultPlan::scripted([(site::SERVE_SEARCH, 0, Fault::Panic)]));
    let (handle, _ledger) = server("panic", Some(plan));
    let mut client = Client::connect(handle.listen()).unwrap();

    let err = client.submit(quick("doomed", 3, None)).unwrap_err();
    let ClientError::Protocol(detail) = &err else { panic!("want protocol error, got {err:?}") };
    assert!(detail.contains("search panicked"), "{detail}");
    assert!(detail.contains("the daemon survives"), "{detail}");

    // The same connection keeps working, the panic was counted, and the
    // retried request completes.
    let retry = client.submit(quick("retry", 3, None)).unwrap();
    assert!(retry.succeeded(), "{:?}", retry.rejection);
    let stats = handle.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.served, 1);
    handle.shutdown();
}

#[test]
fn dropped_connections_are_survivable_by_the_retrying_client_bit_identically() {
    // Reference daemon: no faults.
    let (clean, _clean_ledger) = server("drop-ref", None);
    let mut reference = Client::connect(clean.listen()).unwrap();

    // Chaos daemon: one third of response frames tear the connection.
    let cfg = FaultConfig { drop_connection: 333, ..FaultConfig::NONE };
    let plan = Arc::new(FaultPlan::seeded(9, cfg));
    let (handle, _ledger) = server("drop", Some(Arc::clone(&plan)));
    let policy = RetryPolicy::fast();

    for seed in 0..6u64 {
        let req = quick(&format!("req-{seed}"), 100 + seed, None);
        let sub = policy.submit(handle.listen(), &req).expect("retries ride out drops");
        assert!(sub.succeeded(), "seed {seed}: {:?}", sub.rejection);
        let want = reference.submit(quick("ref", 100 + seed, None)).unwrap();
        assert_eq!(
            outcome_to_string(sub.outcome.as_ref().unwrap()),
            outcome_to_string(want.outcome.as_ref().unwrap()),
            "seed {seed} drifted across injected drops"
        );
    }
    assert!(plan.injected() > 0, "the storm never actually dropped a connection");
    handle.shutdown();
    clean.shutdown();
}

#[test]
fn a_dead_daemon_surfaces_as_a_typed_timeout_not_a_hang() {
    // A listener that accepts but never answers.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let mut client = Client::connect(&Listen::Tcp(addr)).unwrap();
    client.set_timeout(Some(Duration::from_millis(120))).unwrap();
    let t = Instant::now();
    let err = client.ping().unwrap_err();
    assert!(matches!(err, ClientError::Timeout(_)), "got {err:?}");
    assert!(err.is_retryable());
    assert!(t.elapsed() < Duration::from_secs(10), "timeout must not hang");
    drop(listener);
}

#[test]
fn corrupt_ledgers_are_quarantined_at_startup_and_the_survivors_replay() {
    // Daemon A writes one good row.
    let (handle, ledger_path) = server("quarantine", None);
    let mut client = Client::connect(handle.listen()).unwrap();
    let cold = client.submit(quick("cold", 4, None)).unwrap();
    assert!(cold.succeeded());
    handle.shutdown();

    // Corruption lands while the daemon is down: a garbage row plus a
    // torn half-row at the tail (the SIGKILL-mid-append signature).
    let good = fs::read_to_string(&ledger_path).unwrap();
    let torn = &good[..good.len() / 3];
    fs::write(&ledger_path, format!("{good}this is not a ledger row\n{torn}")).unwrap();

    // Daemon B: repairs on load, reports it, and still serves the
    // surviving row warm and bit-identical.
    let handle = start(ServerConfig::new(unix_listen("quarantine-b"), &ledger_path)).unwrap();
    let health = handle.ledger_health();
    assert_eq!(health.quarantined, 1);
    assert!(health.truncated);
    assert_eq!(health.kept, 1);
    let stats = handle.stats();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.ledger_rows, 1);

    let mut client = Client::connect(handle.listen()).unwrap();
    let warm = client.submit(quick("warm", 4, None)).unwrap();
    assert!(warm.cached, "the surviving row must replay from cache");
    assert_eq!(
        outcome_to_string(warm.outcome.as_ref().unwrap()),
        outcome_to_string(cold.outcome.as_ref().unwrap()),
    );
    handle.shutdown();

    // The quarantined row is preserved for the post-mortem.
    let q = fs::read_to_string(quarantine_path(&ledger_path)).unwrap();
    assert!(q.contains("not a ledger row"), "{q}");
    let _ = fs::remove_file(&ledger_path);
    let _ = fs::remove_file(quarantine_path(&ledger_path));
}

#[test]
fn a_client_vanishing_mid_stream_cancels_the_search_and_caches_nothing() {
    let (handle, ledger_path) = server("vanish", None);

    // Submit a long search with progress streaming, then vanish.
    let mut client = Client::connect(handle.listen()).unwrap();
    let req = SubmitRequest {
        id: "ghost".into(),
        target: Target::Scenario("fig2@edge/b1".into()),
        seeds: vec![7],
        effort: Some(0.5),
        progress: true,
        deadline_ms: None,
    };
    client.send(&soma_serve::Request::Submit(req)).unwrap();
    // Wait until the search is admitted (the `accepted` frame), then
    // vanish: the daemon's next progress frame hits a dead socket.
    let accepted = client.recv().unwrap();
    assert!(matches!(accepted, soma_serve::Response::Accepted { .. }), "{accepted:?}");
    drop(client);

    let mut probe = Client::connect(handle.listen()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = probe.stats().unwrap();
        if stats.cancelled >= 1 {
            assert_eq!(stats.ledger_rows, 0, "partial work must not be cached");
            assert_eq!(stats.served, 0);
            assert_eq!(stats.inflight, 0, "the permit must be released");
            break;
        }
        assert!(Instant::now() < deadline, "disconnect was never noticed");
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
    assert!(
        !ledger_path.exists() || fs::read_to_string(&ledger_path).unwrap().is_empty(),
        "discarded search must leave no ledger row"
    );
}
