//! End-to-end tests of the serve daemon over real sockets: concurrent
//! submits, streamed progress, the ledger-backed warm path, typed
//! admission rejects, inline specs, and graceful shutdown.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use soma_search::record::{outcome_to_string, ENGINE_VERSION};
use soma_search::SearchEvent;
use soma_serve::{
    start, Client, Listen, RejectReason, ServerConfig, SubmitRequest, Target, PROTOCOL_VERSION,
};
use soma_spec::ledger::Ledger;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soma-serve-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

fn unix_listen(name: &str) -> Listen {
    Listen::Unix(tmp(&format!("{name}.sock")))
}

fn quick(id: &str, scenario: &str, seed: u64) -> SubmitRequest {
    SubmitRequest {
        id: id.into(),
        target: Target::Scenario(scenario.into()),
        seeds: vec![seed],
        effort: Some(0.01),
        progress: true,
        deadline_ms: None,
    }
}

#[test]
fn eight_concurrent_submits_then_bit_identical_cache_hits() {
    let ledger_path = tmp("concurrent.jsonl");
    let _ = std::fs::remove_file(&ledger_path);
    let handle = start(ServerConfig {
        max_inflight: 8,
        ..ServerConfig::new(unix_listen("concurrent"), &ledger_path)
    })
    .unwrap();
    let listen = handle.listen().clone();

    // Eight clients, eight connections, eight distinct cold requests —
    // all in flight together.
    let workers: Vec<_> = (0..8u64)
        .map(|i| {
            let listen = listen.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&listen).unwrap();
                client.submit(quick(&format!("req-{i}"), "fig2@edge/b1", 100 + i)).unwrap()
            })
        })
        .collect();
    let cold: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for (i, sub) in cold.iter().enumerate() {
        assert!(sub.succeeded(), "request {i} failed: {:?}", sub.rejection);
        assert!(!sub.cached, "first submission of seed {i} cannot be cached");
        assert!(!sub.progress.is_empty(), "cold request {i} must stream progress frames, got none");
        assert!(
            sub.progress.iter().any(|e| matches!(e, SearchEvent::RoundStarted { .. })),
            "request {i} progress must include round starts"
        );
        assert!(
            sub.progress.iter().any(|e| matches!(e, SearchEvent::BudgetExhausted { .. })),
            "request {i} progress must end with the budget summary"
        );
    }

    // Repeat one of them verbatim: served from the ledger, flagged
    // cached, zero search work (no progress frames), and the outcome is
    // bit-identical to the cold run's.
    let mut client = Client::connect(&listen).unwrap();
    let warm = client.submit(quick("again", "fig2@edge/b1", 103)).unwrap();
    assert!(warm.cached, "repeat request must be served from the ledger");
    assert!(warm.progress.is_empty(), "a cache hit does no search work");
    assert_eq!(warm.hash, cold[3].hash, "same request, same cell key");
    assert_eq!(
        outcome_to_string(warm.outcome.as_ref().unwrap()),
        outcome_to_string(cold[3].outcome.as_ref().unwrap()),
        "cached outcome is bit-identical"
    );

    let stats = handle.stats();
    assert_eq!(stats.served, 9);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.ledger_rows, 8);
    assert_eq!(stats.inflight, 0, "all submits have released their permits");
    assert!(stats.uptime_ms > 0, "uptime gauge must tick (9 searches ran)");
    // The same gauges over the wire: the stats frame a monitoring
    // client sees carries them too.
    let wire = client.stats().unwrap();
    assert_eq!(wire.inflight, 0);
    assert!(wire.uptime_ms >= stats.uptime_ms, "uptime is monotonic across polls");
    handle.shutdown();

    // The cache survived on disk, one clean row per distinct request.
    assert_eq!(Ledger::load(&ledger_path).unwrap().len(), 8);
}

#[test]
fn ping_reports_engine_and_protocol_versions() {
    let ledger_path = tmp("ping.jsonl");
    let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), &ledger_path)).unwrap();
    let mut client = Client::connect(handle.listen()).unwrap();
    let (engine, protocol) = client.ping().unwrap();
    assert_eq!(engine, ENGINE_VERSION);
    assert_eq!(protocol, PROTOCOL_VERSION);
    handle.shutdown();
}

#[test]
fn oversized_requests_get_a_typed_budget_reject() {
    let ledger_path = tmp("budget.jsonl");
    let _ = std::fs::remove_file(&ledger_path);
    let handle = start(ServerConfig {
        max_evals: 1,
        ..ServerConfig::new(unix_listen("budget"), &ledger_path)
    })
    .unwrap();
    let mut client = Client::connect(handle.listen()).unwrap();
    let sub = client.submit(quick("big", "fig2@edge/b1", 1)).unwrap();
    assert!(!sub.succeeded());
    let (reason, detail) = sub.rejection.expect("must be rejected");
    assert_eq!(reason, RejectReason::BudgetExceeded);
    assert!(detail.contains("per-request budget of 1"), "{detail}");
    handle.shutdown();
}

#[test]
fn saturated_server_refuses_with_queue_full() {
    let ledger_path = tmp("queue.jsonl");
    let _ = std::fs::remove_file(&ledger_path);
    let handle = start(ServerConfig {
        max_inflight: 1,
        ..ServerConfig::new(unix_listen("queue"), &ledger_path)
    })
    .unwrap();
    let listen = handle.listen().clone();

    // Occupy the single slot with a deliberately heavyweight search...
    let occupant = {
        let listen = listen.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&listen).unwrap();
            let req = SubmitRequest { effort: Some(1.0), ..quick("slow", "fig2@edge/b1", 7) };
            client.submit(req).unwrap()
        })
    };
    // ...wait until the server confirms it is running (stats flow on
    // their own connection, independent of the busy slot)...
    let mut probe = Client::connect(&listen).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while probe.stats().unwrap().inflight == 0 {
        assert!(Instant::now() < deadline, "occupant search never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...then a second distinct submit must bounce, typed.
    let mut client = Client::connect(&listen).unwrap();
    let sub = client.submit(quick("bounced", "fig2@edge/b1", 8)).unwrap();
    let (reason, detail) = sub.rejection.expect("must be rejected while saturated");
    assert_eq!(reason, RejectReason::QueueFull);
    assert!(detail.contains("in flight"), "{detail}");

    assert!(occupant.join().unwrap().succeeded());
    handle.shutdown();
}

#[test]
fn inline_network_specs_schedule_and_cache() {
    let network = "soma-network v1\nname inline-demo\nprecision 1\n\
                   input x 1x3x32x32\nconv stem from x cout=8 k=3x3 stride=2\n\
                   vector act relu from stem\noutput act\nend\n";
    let hardware = "soma-hardware v1\npreset edge\nbuffer_mib 2\nend\n";
    let req = |id: &str| SubmitRequest {
        id: id.into(),
        target: Target::Inline { network: network.into(), hardware: Some(hardware.into()) },
        seeds: vec![5],
        effort: Some(0.01),
        progress: true,
        deadline_ms: None,
    };

    let ledger_path = tmp("inline.jsonl");
    let _ = std::fs::remove_file(&ledger_path);
    let handle = start(ServerConfig::new(unix_listen("inline"), &ledger_path)).unwrap();
    let mut client = Client::connect(handle.listen()).unwrap();

    let cold = client.submit(req("c")).unwrap();
    assert!(cold.succeeded(), "{:?}", cold.rejection);
    assert!(!cold.cached);
    let warm = client.submit(req("w")).unwrap();
    assert!(warm.cached, "identical inline request must hit the ledger");
    assert_eq!(warm.hash, cold.hash);

    // The inline row is keyed by a content-addressed scenario id.
    handle.shutdown();
    let ledger = Ledger::load(&ledger_path).unwrap();
    assert_eq!(ledger.len(), 1);
    assert!(ledger.rows()[0].cell.starts_with("inline-"), "{}", ledger.rows()[0].cell);
}

#[test]
fn bad_requests_and_bad_frames_are_typed_not_fatal() {
    let ledger_path = tmp("bad.jsonl");
    let handle = start(ServerConfig::new(Listen::Tcp("127.0.0.1:0".into()), &ledger_path)).unwrap();

    // An unknown scenario is a typed bad-request reject.
    let mut client = Client::connect(handle.listen()).unwrap();
    let sub = client.submit(quick("nope", "made-up@edge/b1", 1)).unwrap();
    let (reason, detail) = sub.rejection.expect("must be rejected");
    assert_eq!(reason, RejectReason::BadRequest);
    assert!(detail.contains("made-up@edge/b1"), "{detail}");

    // Garbage on the wire gets an error frame, and the connection (and
    // server) survive to serve the next well-formed request.
    use std::io::{BufRead, BufReader, Write};
    let Listen::Tcp(addr) = handle.listen() else { unreachable!() };
    let mut raw = std::net::TcpStream::connect(addr.as_str()).unwrap();
    let mut lines = BufReader::new(raw.try_clone().unwrap());
    writeln!(raw, "this is not json").unwrap();
    let mut reply = String::new();
    lines.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"type\":\"error\""), "{reply}");
    writeln!(raw, "{{\"v\":1,\"type\":\"ping\"}}").unwrap();
    reply.clear();
    lines.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"type\":\"pong\""), "{reply}");
    handle.shutdown();
}

#[test]
fn shutdown_drains_and_the_ledger_replays_across_restarts() {
    let ledger_path = tmp("restart.jsonl");
    let _ = std::fs::remove_file(&ledger_path);

    // First daemon: one cold request, then a graceful stop.
    let handle = start(ServerConfig::new(unix_listen("restart-a"), &ledger_path)).unwrap();
    let mut client = Client::connect(handle.listen()).unwrap();
    let cold = client.submit(quick("r", "fig4@edge/b1", 11)).unwrap();
    assert!(cold.succeeded());
    handle.shutdown();

    // The flushed ledger loads clean...
    assert_eq!(Ledger::load(&ledger_path).unwrap().len(), 1);

    // ...and a second daemon serves the same request from it, warm and
    // bit-identical, without re-searching.
    let handle = start(ServerConfig::new(unix_listen("restart-b"), &ledger_path)).unwrap();
    let mut client = Client::connect(handle.listen()).unwrap();
    let warm = client.submit(quick("r2", "fig4@edge/b1", 11)).unwrap();
    assert!(warm.cached, "restarted daemon must serve from the persisted cache");
    assert_eq!(
        outcome_to_string(warm.outcome.as_ref().unwrap()),
        outcome_to_string(cold.outcome.as_ref().unwrap()),
    );
    handle.shutdown();
}

#[test]
fn draining_server_rejects_new_submits_as_shutting_down() {
    let ledger_path = tmp("draining.jsonl");
    let handle = start(ServerConfig::new(unix_listen("draining"), &ledger_path)).unwrap();
    let listen = handle.listen().clone();
    // Connect first, then start draining: the established connection
    // stays up, but its next submit must bounce with `shutting-down`.
    let mut client = Client::connect(&listen).unwrap();
    handle.drain();
    let sub = client.submit(quick("late", "fig2@edge/b1", 99)).unwrap();
    let (reason, _) = sub.rejection.expect("must be rejected while draining");
    assert_eq!(reason, RejectReason::ShuttingDown);
    handle.shutdown();
}
