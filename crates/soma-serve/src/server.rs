//! The daemon: accept loop, per-connection request handling, and the
//! ledger-backed result cache.
//!
//! One thread accepts connections (nonblocking, polling the stop flag);
//! each connection gets its own handler thread reading one request
//! frame per line. A `submit` either hits the shared [`Ledger`] — the
//! result streams back immediately, bit-identical to the original run,
//! with `cached: true` and zero search work — or passes admission and
//! runs a [`Scheduler`] search right on the connection thread, streaming
//! [`SearchEvent`] progress frames as the engine reports them. Fresh
//! outcomes are appended to the ledger (flushed before the result frame
//! is sent), so the cache grows across requests *and* across daemon
//! restarts.
//!
//! Graceful shutdown: [`ServerHandle::shutdown`] (or SIGINT/SIGTERM via
//! [`crate::shutdown`]) flips a flag that the accept loop and every
//! connection loop poll between frames. In-flight searches run to
//! completion and their rows are flushed; new submits are refused with
//! `shutting-down`.

use std::io::{self, BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use soma_search::record::ENGINE_VERSION;
use soma_search::{Cancelled, Parallelism, Scheduler, SearchConfig, SearchOutcome};
use soma_spec::fault::{self, Fault, FaultPlan};
use soma_spec::ledger::{Ledger, LedgerRow};
use soma_spec::registry;
use soma_spec::{cell_hash_hex, inline_scenario_id, read_hardware, read_network, ExperimentCell};

use crate::admission::{estimate_evals, Admission};
use crate::net::{Listen, Listener, Stream};
use crate::protocol::{
    parse_line, to_line, RejectReason, Request, Response, StatsSnapshot, SubmitRequest, Target,
};
use crate::{shutdown, PROTOCOL_VERSION};

/// How often blocked accepts/reads re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Everything a daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Listen,
    /// The result-cache ledger (created on first append; loaded —
    /// including torn-tail repair — at start-up).
    pub ledger_path: PathBuf,
    /// Maximum concurrently running submits; excess is refused with
    /// `queue-full`. Clamped to at least 1.
    pub max_inflight: usize,
    /// Per-request ceiling on *estimated* schedule evaluations
    /// (`0` = unlimited); larger submits are refused with
    /// `budget-exceeded`.
    pub max_evals: u64,
    /// Seed fan-out policy for each search (wall-clock only; results
    /// are bit-identical across policies).
    pub parallelism: Parallelism,
    /// Deterministic fault injection for chaos testing (`--chaos`):
    /// the plan is threaded behind the ledger writer, the frame writer
    /// and the search runner. `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl ServerConfig {
    /// A config with the documented knob defaults: 8 in-flight submits,
    /// no budget ceiling, automatic seed fan-out, no fault injection.
    pub fn new(listen: Listen, ledger_path: impl Into<PathBuf>) -> Self {
        Self {
            listen,
            ledger_path: ledger_path.into(),
            max_inflight: 8,
            max_evals: 0,
            parallelism: Parallelism::Auto,
            faults: None,
        }
    }
}

/// Shared server state: the cache, admission, counters, stop flag.
struct Shared {
    ledger: Mutex<Ledger>,
    admission: Admission,
    served: AtomicU64,
    cache_hits: AtomicU64,
    cancelled: AtomicU64,
    panics: AtomicU64,
    /// Corrupt rows quarantined when the ledger loaded (fixed at start).
    quarantined: u64,
    /// When the daemon started accepting connections — the `uptime_ms`
    /// gauge in stats frames measures from here.
    started: Instant,
    stop: AtomicBool,
    draining: AtomicBool,
    parallelism: Parallelism,
    faults: Option<Arc<FaultPlan>>,
}

impl Shared {
    /// Local shutdown *or* the process-wide signal flag: close loops.
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || shutdown::stop_requested()
    }

    /// Whether new submits are refused (`shutting-down`): draining or
    /// fully stopping. Connections stay open while merely draining.
    fn refusing(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.stopping()
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            inflight: self.admission.inflight() as u64,
            served: self.served.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            rejected: self.admission.rejected(),
            ledger_rows: self.ledger.lock().expect("ledger lock poisoned").len() as u64,
            cancelled: self.cancelled.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            quarantined: self.quarantined,
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// A running daemon. Dropping the handle shuts the daemon down
/// gracefully (equivalent to [`shutdown`](Self::shutdown)).
pub struct ServerHandle {
    listen: Listen,
    shared: Arc<Shared>,
    health: soma_spec::LedgerHealth,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The resolved listen address (TCP port 0 replaced by the real
    /// port) — what clients should connect to.
    pub fn listen(&self) -> &Listen {
        &self.listen
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// What loading the ledger found and repaired at start-up — callers
    /// (the `serve` binary) surface a warning when it is not clean.
    pub fn ledger_health(&self) -> soma_spec::LedgerHealth {
        self.health
    }

    /// Starts draining without waiting: new submits are refused with
    /// `shutting-down` while connections stay up and in-flight work
    /// finishes. Follow with [`shutdown`](Self::shutdown) (or drop the
    /// handle) to actually stop and join.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Requests a graceful stop and waits for the accept loop and every
    /// connection thread to drain. In-flight searches complete and
    /// their rows are flushed to the ledger before this returns.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Listen::Unix(path) = &self.listen {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds the endpoint, loads the ledger and starts the accept loop.
///
/// # Errors
///
/// I/O errors binding the socket or loading a damaged ledger.
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let mut ledger = Ledger::load(&config.ledger_path)?;
    let health = ledger.health();
    if let Some(plan) = &config.faults {
        ledger.inject_faults(Arc::clone(plan));
    }
    let (listener, resolved) = Listener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        ledger: Mutex::new(ledger),
        admission: Admission::new(config.max_inflight, config.max_evals),
        served: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        cancelled: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        quarantined: health.quarantined as u64,
        started: Instant::now(),
        stop: AtomicBool::new(false),
        draining: AtomicBool::new(false),
        parallelism: config.parallelism,
        faults: config.faults.clone(),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !accept_shared.stopping() {
            match listener.accept() {
                Ok(stream) => {
                    let conn_shared = Arc::clone(&accept_shared);
                    connections
                        .push(std::thread::spawn(move || handle_connection(stream, &conn_shared)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                // A failed accept (e.g. the socket vanished) ends the
                // loop; connections already open keep draining below.
                Err(_) => break,
            }
            connections.retain(|c| !c.is_finished());
        }
        for c in connections {
            let _ = c.join();
        }
    });

    Ok(ServerHandle { listen: resolved, shared, health, accept_thread: Some(accept_thread) })
}

/// Reads one `\n`-terminated line, polling the stop flag across read
/// timeouts. `Ok(false)` means EOF or stop; partial data read before a
/// timeout stays in `line` and the next poll continues accumulating.
fn read_line_polling(
    reader: &mut BufReader<Stream>,
    line: &mut String,
    shared: &Shared,
) -> io::Result<bool> {
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(false),
            Ok(_) => return Ok(true),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn send(writer: &mut Stream, shared: &Shared, resp: &Response) -> io::Result<()> {
    let line = to_line(&resp.to_json());
    if let Some(Fault::DropConnection) =
        shared.faults.as_ref().and_then(|p| p.next(fault::site::SERVE_SEND))
    {
        // The peer vanishes mid-frame: half the line goes out, then the
        // connection dies. The caller sees an error exactly as it would
        // on a real reset.
        let _ = writer.write_all(&line.as_bytes()[..line.len() / 2]);
        let _ = writer.flush();
        return Err(io::Error::other("injected fault: connection dropped mid-frame"));
    }
    writeln!(writer, "{line}")?;
    writer.flush()
}

fn handle_connection(stream: Stream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(clone) = stream.try_clone() else { return };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let mut line = String::new();

    loop {
        line.clear();
        match read_line_polling(&mut reader, &mut line, shared) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_line(line.trim_end()).and_then(|v| Request::from_json(&v)) {
            Ok(req) => req,
            Err(e) => {
                if send(&mut writer, shared, &Response::Error { detail: e.to_string() }).is_err() {
                    return;
                }
                continue;
            }
        };
        let ok = match request {
            Request::Ping => send(
                &mut writer,
                shared,
                &Response::Pong { engine: ENGINE_VERSION.into(), protocol: PROTOCOL_VERSION },
            ),
            Request::Stats => send(&mut writer, shared, &Response::Stats(shared.snapshot())),
            Request::Submit(submit) => handle_submit(&mut writer, shared, submit),
        };
        if ok.is_err() {
            return;
        }
    }
}

/// Resolves a submit target into an executable cell. Inline networks
/// get a content-addressed scenario id ([`inline_scenario_id`]) so
/// identical inline requests share a ledger row; their batch is part of
/// the network text itself and is recorded as 1.
fn resolve_target(target: &Target) -> Result<ExperimentCell, String> {
    match target {
        Target::Scenario(id) => {
            let sc = registry::lookup(id).ok_or_else(|| format!("unknown scenario `{id}`"))?;
            let hw = sc.hardware();
            Ok(ExperimentCell {
                id: sc.id(),
                workload: sc.workload.clone(),
                platform: hw.name.clone(),
                batch: sc.batch,
                net: sc.network(),
                hw,
            })
        }
        Target::Inline { network, hardware } => {
            let net = read_network(network).map_err(|e| format!("bad network spec: {e}"))?;
            let hw = match hardware {
                Some(text) => {
                    read_hardware(text).map_err(|e| format!("bad hardware spec: {e}"))?.resolve()
                }
                None => soma_arch::HardwareConfig::edge(),
            };
            Ok(ExperimentCell {
                id: inline_scenario_id(network, &hw),
                workload: net.name().to_string(),
                platform: hw.name.clone(),
                batch: 1,
                net,
                hw,
            })
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

fn handle_submit(writer: &mut Stream, shared: &Shared, submit: SubmitRequest) -> io::Result<()> {
    // The deadline clock starts at frame receipt, before any work.
    let deadline = submit.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let reject = |writer: &mut Stream, reason: RejectReason, detail: String| {
        send(writer, shared, &Response::Rejected { id: submit.id.clone(), reason, detail })
    };

    if shared.refusing() {
        return reject(writer, RejectReason::ShuttingDown, "server is draining".into());
    }
    let cell = match resolve_target(&submit.target) {
        Ok(cell) => cell,
        Err(detail) => return reject(writer, RejectReason::BadRequest, detail),
    };

    let mut cfg = SearchConfig::default();
    if let Some(effort) = submit.effort {
        if !(effort.is_finite() && effort > 0.0) {
            return reject(
                writer,
                RejectReason::BadRequest,
                format!("effort must be a positive finite number, got {effort}"),
            );
        }
        cfg.effort = effort;
    }
    let seeds = if submit.seeds.is_empty() { vec![cfg.seed] } else { submit.seeds.clone() };
    let hash = cell_hash_hex(&cell.id, &cell.hw, &cfg, &seeds, ENGINE_VERSION);

    // Warm path: answer straight from the ledger, no admission needed —
    // a cache hit costs no search work.
    let hit = {
        let ledger = shared.ledger.lock().expect("ledger lock poisoned");
        ledger.lookup(&hash).and_then(|row| row.outcome().cloned())
    };
    if let Some(outcome) = hit {
        shared.cache_hits.fetch_add(1, Ordering::SeqCst);
        shared.served.fetch_add(1, Ordering::SeqCst);
        send(
            writer,
            shared,
            &Response::Accepted { id: submit.id.clone(), hash: hash.clone(), cached: true },
        )?;
        return send(
            writer,
            shared,
            &Response::Result {
                id: submit.id.clone(),
                hash,
                cached: true,
                outcome: Box::new(outcome),
            },
        );
    }

    // A cache hit beats any deadline (it costs nothing), but a cold
    // search that cannot possibly finish in time is refused up front.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return reject(
            writer,
            RejectReason::DeadlineExceeded,
            format!("deadline of {}ms expired before admission", submit.deadline_ms.unwrap_or(0)),
        );
    }

    // Cold path: pass admission, search, flush, answer.
    let estimate = estimate_evals(&cfg, cell.net.len(), seeds.len());
    let permit = match shared.admission.admit(estimate) {
        Ok(p) => p,
        Err(reason) => {
            let detail = match reason {
                RejectReason::QueueFull => {
                    format!("{} submits already in flight", shared.admission.inflight())
                }
                _ => format!(
                    "estimated {estimate} evaluations exceeds the per-request budget of {}",
                    shared.admission.max_evals()
                ),
            };
            return reject(writer, reason, detail);
        }
    };
    send(
        writer,
        shared,
        &Response::Accepted { id: submit.id.clone(), hash: hash.clone(), cached: false },
    )?;

    // The search is cancelled cooperatively when the deadline lapses or
    // the client disconnects mid-stream — a vanished client releases
    // its permit and its partial work is discarded instead of burning a
    // full search nobody will read. Panics inside the engine (real or
    // injected) are caught here: one poisoned request must not take
    // down the daemon.
    let disconnected = AtomicBool::new(false);
    let probe =
        || disconnected.load(Ordering::SeqCst) || deadline.is_some_and(|d| Instant::now() >= d);
    let search = catch_unwind(AssertUnwindSafe(|| {
        match shared.faults.as_ref().and_then(|p| p.next(fault::site::SERVE_SEARCH)) {
            Some(Fault::Panic) => panic!("injected fault: search panic"),
            Some(Fault::Slow { millis }) => std::thread::sleep(Duration::from_millis(millis)),
            _ => {}
        }
        let mut observer = |ev: &soma_search::SearchEvent| {
            if submit.progress && !disconnected.load(Ordering::SeqCst) {
                let frame = Response::Progress { id: submit.id.clone(), event: ev.clone() };
                if send(writer, shared, &frame).is_err() {
                    disconnected.store(true, Ordering::SeqCst);
                }
            }
        };
        Scheduler::new(&cell.net, &cell.hw)
            .config(cfg.clone())
            .seeds(seeds.iter().copied())
            .parallelism(shared.parallelism)
            .observer(&mut observer)
            .cancel_when(&probe)
            .run_cancellable()
    }));
    drop(permit);

    let outcome: SearchOutcome = match search {
        Err(payload) => {
            shared.panics.fetch_add(1, Ordering::SeqCst);
            return send(
                writer,
                shared,
                &Response::Error {
                    detail: format!(
                        "search panicked: {} (request {} failed; the daemon survives)",
                        panic_message(payload.as_ref()),
                        submit.id
                    ),
                },
            );
        }
        Ok(Err(Cancelled)) => {
            shared.cancelled.fetch_add(1, Ordering::SeqCst);
            if disconnected.load(Ordering::SeqCst) {
                // Nobody is listening; close the connection.
                return Err(io::Error::other("client disconnected mid-search"));
            }
            return reject(
                writer,
                RejectReason::DeadlineExceeded,
                format!(
                    "deadline of {}ms expired mid-search; partial work discarded",
                    submit.deadline_ms.unwrap_or(0)
                ),
            );
        }
        Ok(Ok(outcome)) => outcome,
    };

    {
        let mut ledger = shared.ledger.lock().expect("ledger lock poisoned");
        // Two concurrent submits of the same request both search (the
        // outcomes are bit-identical); only the first appends, keeping
        // the ledger one-row-per-key like the lab orchestrator. A
        // failed append (real or injected) is not fatal to the client:
        // the outcome is correct either way, the cache just won't have
        // it until someone recomputes — and the next load repairs any
        // torn tail the failure left behind.
        if ledger.lookup(&hash).is_none() {
            let _ = ledger.append(LedgerRow::new(&cell, &hash, outcome.clone()));
        }
    }
    shared.served.fetch_add(1, Ordering::SeqCst);
    send(
        writer,
        shared,
        &Response::Result {
            id: submit.id.clone(),
            hash,
            cached: false,
            outcome: Box::new(outcome),
        },
    )
}
