//! A small synchronous client for the serve protocol — what the
//! `loadgen` benchmark, the CI smoke test and the e2e tests drive, and
//! a reference implementation for anyone speaking the protocol from
//! another language.

use std::io::{self, BufRead, BufReader, Write};

use soma_search::{SearchEvent, SearchOutcome};

use crate::net::{Listen, Stream};
use crate::protocol::{
    parse_line, to_line, RejectReason, Request, Response, StatsSnapshot, SubmitRequest,
};

/// One connection to a serve daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

/// How a submit ended, with everything observed along the way.
#[derive(Debug)]
pub struct Submission {
    /// The request's ledger key (present iff the submit was accepted).
    pub hash: Option<String>,
    /// Whether the result came from the ledger without search work.
    pub cached: bool,
    /// Progress events streamed while the search ran.
    pub progress: Vec<SearchEvent>,
    /// The outcome (present iff a `result` frame arrived).
    pub outcome: Option<SearchOutcome>,
    /// The typed rejection, if the submit was refused.
    pub rejection: Option<(RejectReason, String)>,
}

impl Submission {
    /// Whether the submit produced an outcome.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_some()
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect(listen: &Listen) -> io::Result<Self> {
        let writer = Stream::connect(listen)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        writeln!(self.writer, "{}", to_line(&req.to_json()))?;
        self.writer.flush()
    }

    /// Blocks for the next response frame.
    ///
    /// # Errors
    ///
    /// Socket read errors; a closed connection or unparseable frame
    /// surfaces as [`io::ErrorKind::InvalidData`]/`UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the stream"));
        }
        let v = parse_line(line.trim_end()).map_err(invalid)?;
        Response::from_json(&v).map_err(invalid)
    }

    /// Pings the daemon, returning `(engine_version, protocol_version)`.
    ///
    /// # Errors
    ///
    /// Transport errors, or an unexpected response frame.
    pub fn ping(&mut self) -> io::Result<(String, u64)> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong { engine, protocol } => Ok((engine, protocol)),
            other => Err(invalid(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Transport errors, or an unexpected response frame.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            other => Err(invalid(format!("expected stats, got {other:?}"))),
        }
    }

    /// Submits a scheduling request and drives it to its terminal frame
    /// (`result` or `rejected`), collecting progress along the way.
    ///
    /// # Errors
    ///
    /// Transport errors, a frame for a different request id, or a
    /// protocol-order violation.
    pub fn submit(&mut self, req: SubmitRequest) -> io::Result<Submission> {
        let want = req.id.clone();
        self.send(&Request::Submit(req))?;
        let mut sub = Submission {
            hash: None,
            cached: false,
            progress: Vec::new(),
            outcome: None,
            rejection: None,
        };
        loop {
            match self.recv()? {
                Response::Accepted { id, hash, cached } if id == want => {
                    sub.hash = Some(hash);
                    sub.cached = cached;
                }
                Response::Progress { id, event } if id == want => sub.progress.push(event),
                Response::Result { id, hash, cached, outcome } if id == want => {
                    sub.hash = Some(hash);
                    sub.cached = cached;
                    sub.outcome = Some(*outcome);
                    return Ok(sub);
                }
                Response::Rejected { id, reason, detail } if id == want => {
                    sub.rejection = Some((reason, detail));
                    return Ok(sub);
                }
                Response::Error { detail } => return Err(invalid(detail)),
                other => return Err(invalid(format!("unexpected frame {other:?}"))),
            }
        }
    }
}
