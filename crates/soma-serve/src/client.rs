//! A small synchronous client for the serve protocol — what the
//! `loadgen` benchmark, the CI smoke test and the e2e tests drive, and
//! a reference implementation for anyone speaking the protocol from
//! another language.
//!
//! Failure semantics are typed ([`ClientError`]): every read carries a
//! deadline (default [`Client::DEFAULT_TIMEOUT`]) so a hung or dead
//! daemon surfaces as [`ClientError::Timeout`] instead of blocking the
//! caller forever. For callers that want to survive daemon restarts and
//! queue-full pushback, [`RetryPolicy`] packages the idiom: exponential
//! backoff with deterministic jitter around connect + submit. Blind
//! resubmission is *safe* by design — results are content-addressed in
//! the daemon's ledger, so a retried request either hits the cache of
//! the first attempt or recomputes the identical row.

use std::io::{self, BufRead, BufReader, Write};
use std::time::Duration;

use soma_search::{SearchEvent, SearchOutcome};

use crate::net::{Listen, Stream};
use crate::protocol::{
    parse_line, to_line, RejectReason, Request, Response, StatsSnapshot, SubmitRequest,
};

/// A typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon did not produce a frame within the read timeout —
    /// it is dead, hung, or slower than the configured patience.
    Timeout(Duration),
    /// A transport failure: connect refused, connection reset, stream
    /// closed mid-frame.
    Io(io::Error),
    /// The daemon sent something the protocol does not allow here
    /// (unparseable frame, wrong id, out-of-order frame, `error` frame).
    Protocol(String),
}

impl ClientError {
    /// Whether retrying against a (possibly restarted) daemon can
    /// plausibly succeed: transport failures and timeouts, yes;
    /// protocol violations, no.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Timeout(_) | ClientError::Io(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout(t) => write!(f, "no response within {}ms", t.as_millis()),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn protocol(e: impl std::fmt::Display) -> ClientError {
    ClientError::Protocol(e.to_string())
}

/// One connection to a serve daemon.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    timeout: Option<Duration>,
}

/// How a submit ended, with everything observed along the way.
#[derive(Debug)]
pub struct Submission {
    /// The request's ledger key (present iff the submit was accepted).
    pub hash: Option<String>,
    /// Whether the result came from the ledger without search work.
    pub cached: bool,
    /// Progress events streamed while the search ran.
    pub progress: Vec<SearchEvent>,
    /// The outcome (present iff a `result` frame arrived).
    pub outcome: Option<SearchOutcome>,
    /// The typed rejection, if the submit was refused.
    pub rejection: Option<(RejectReason, String)>,
}

impl Submission {
    /// Whether the submit produced an outcome.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_some()
    }
}

impl Client {
    /// Default per-read patience: generous enough for a cold search on
    /// a loaded box, finite so a dead daemon cannot wedge the caller.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

    /// Connects to a daemon with the [default read
    /// timeout](Self::DEFAULT_TIMEOUT) armed.
    ///
    /// # Errors
    ///
    /// Socket connect errors.
    pub fn connect(listen: &Listen) -> Result<Self, ClientError> {
        let writer = Stream::connect(listen)?;
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Self { reader, writer, timeout: None };
        client.set_timeout(Some(Self::DEFAULT_TIMEOUT))?;
        Ok(client)
    }

    /// Adjusts the per-read timeout (`None` = block forever — only for
    /// callers with their own watchdog).
    ///
    /// # Errors
    ///
    /// Socket option errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.timeout = timeout;
        Ok(())
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", to_line(&req.to_json()))?;
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next response frame, up to the read timeout.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the timeout lapses with no frame,
    /// [`ClientError::Io`] on transport failure or a closed stream,
    /// [`ClientError::Protocol`] on an unparseable frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the stream",
                )))
            }
            // A line without its terminator means the stream died
            // mid-frame (a torn write); that is a transport failure the
            // retry policy may ride out, not a protocol violation.
            Ok(_) if !line.ends_with('\n') => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                )))
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ClientError::Timeout(self.timeout.unwrap_or(Duration::ZERO)))
            }
            Err(e) => return Err(ClientError::Io(e)),
        }
        let v = parse_line(line.trim_end()).map_err(protocol)?;
        Response::from_json(&v).map_err(protocol)
    }

    /// Pings the daemon, returning `(engine_version, protocol_version)`.
    ///
    /// # Errors
    ///
    /// Transport errors, timeout, or an unexpected response frame.
    pub fn ping(&mut self) -> Result<(String, u64), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong { engine, protocol } => Ok((engine, protocol)),
            other => Err(protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Transport errors, timeout, or an unexpected response frame.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(s) => Ok(s),
            other => Err(protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Submits a scheduling request and drives it to its terminal frame
    /// (`result` or `rejected`), collecting progress along the way.
    ///
    /// # Errors
    ///
    /// Transport errors, timeout, a frame for a different request id,
    /// or a protocol-order violation.
    pub fn submit(&mut self, req: SubmitRequest) -> Result<Submission, ClientError> {
        let want = req.id.clone();
        self.send(&Request::Submit(req))?;
        let mut sub = Submission {
            hash: None,
            cached: false,
            progress: Vec::new(),
            outcome: None,
            rejection: None,
        };
        loop {
            match self.recv()? {
                Response::Accepted { id, hash, cached } if id == want => {
                    sub.hash = Some(hash);
                    sub.cached = cached;
                }
                Response::Progress { id, event } if id == want => sub.progress.push(event),
                Response::Result { id, hash, cached, outcome } if id == want => {
                    sub.hash = Some(hash);
                    sub.cached = cached;
                    sub.outcome = Some(*outcome);
                    return Ok(sub);
                }
                Response::Rejected { id, reason, detail } if id == want => {
                    sub.rejection = Some((reason, detail));
                    return Ok(sub);
                }
                Response::Error { detail } => return Err(protocol(detail)),
                other => return Err(protocol(format!("unexpected frame {other:?}"))),
            }
        }
    }
}

/// Deterministic exponential backoff with jitter, shared by every
/// caller that retries against the daemon (loadgen, the chaos suite,
/// the CI smoke scripts). Deterministic on purpose: a retry schedule is
/// part of a reproducible chaos run, so the jitter derives from
/// `jitter_seed` — no wall clock, no OS randomness.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 behaves as 1.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
            jitter_seed: 2025,
        }
    }
}

impl RetryPolicy {
    /// A policy for tests and smoke scripts: quick, but persistent
    /// enough to ride out a daemon restart.
    pub fn fast() -> Self {
        Self {
            attempts: 8,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(400),
            ..Self::default()
        }
    }

    /// The delay before retry number `retry` (1-based): exponential
    /// from [`base_delay`](Self::base_delay), capped at
    /// [`max_delay`](Self::max_delay), plus up to +50% deterministic
    /// jitter so synchronized clients fan out.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << retry.saturating_sub(1).min(16));
        let capped = exp.min(self.max_delay);
        // xorshift64 over (seed, retry): reproducible jitter.
        let mut x = (self.jitter_seed ^ (u64::from(retry) << 32)) | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = capped.as_micros() as u64 / 2;
        capped + Duration::from_micros(x % (half + 1))
    }

    /// Connects, retrying transport failures with backoff — the shared
    /// replacement for ad-hoc "daemon not up yet" poll loops.
    ///
    /// # Errors
    ///
    /// The last attempt's error once attempts are exhausted.
    pub fn connect(&self, listen: &Listen) -> Result<Client, ClientError> {
        let attempts = self.attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt));
            }
            match Client::connect(listen) {
                Ok(c) => return Ok(c),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Submits with full fault-recovery: reconnects and resubmits on
    /// transport errors, timeouts and `queue-full` pushback, with
    /// backoff between attempts. Safe against duplicated work by
    /// construction — the daemon's ledger is content-addressed, so a
    /// resubmit after a lost reply is served from cache.
    ///
    /// Non-transient rejections (`bad-request`, `budget-exceeded`,
    /// `deadline-exceeded`, `shutting-down`) are returned as the
    /// submission, not retried.
    ///
    /// # Errors
    ///
    /// The last attempt's error once attempts are exhausted.
    pub fn submit(&self, listen: &Listen, req: &SubmitRequest) -> Result<Submission, ClientError> {
        let attempts = self.attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt));
            }
            let mut client = match Client::connect(listen) {
                Ok(c) => c,
                Err(e) if e.is_retryable() => {
                    last = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match client.submit(req.clone()) {
                Ok(sub) => {
                    if matches!(sub.rejection, Some((RejectReason::QueueFull, _))) {
                        last = Some(ClientError::Protocol("queue-full".into()));
                        continue;
                    }
                    return Ok(sub);
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = RetryPolicy::default();
        let q = RetryPolicy::default();
        for retry in 1..6 {
            assert_eq!(p.backoff(retry), q.backoff(retry), "retry {retry}");
            assert!(p.backoff(retry) <= p.max_delay + p.max_delay / 2, "cap+jitter bound");
        }
        assert!(p.backoff(1) >= p.base_delay);
        // The un-jittered exponential core doubles until the cap.
        assert!(p.backoff(5) >= p.backoff(1), "later retries wait at least as long");
        let other = RetryPolicy { jitter_seed: 77, ..p };
        assert!(
            (1..10).any(|r| other.backoff(r) != p.backoff(r)),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn retryability_is_typed() {
        assert!(ClientError::Timeout(Duration::from_secs(1)).is_retryable());
        assert!(ClientError::Io(io::Error::other("reset")).is_retryable());
        assert!(!ClientError::Protocol("bad frame".into()).is_retryable());
    }
}
