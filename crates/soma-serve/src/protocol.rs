//! The wire protocol: line-delimited JSON frames, one object per line.
//!
//! Every frame carries `"v": 1` ([`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION));
//! a peer that sees a higher version must reject the frame rather than
//! guess at its meaning. Unknown *fields* inside a known frame are
//! ignored (additive evolution is compatible; removing or re-typing a
//! field bumps the version). See `specs/PROTOCOL.md` for the normative
//! description and a full transcript.
//!
//! Requests flow client → server ([`Request`]); responses flow back
//! ([`Response`]), each tagged with the request's client-chosen `id` so
//! a client can correlate frames. Both directions render through
//! [`Request::to_json`]/[`Response::to_json`] and parse through their
//! `from_json` duals — the conversions are exact inverses, which the
//! unit tests pin.

use serde::json::{self, Value};
use soma_search::record::{event_from_json, event_to_json, outcome_from_json, outcome_to_json};
use soma_search::{SearchEvent, SearchOutcome};

use crate::PROTOCOL_VERSION;

/// A malformed frame: bad JSON, wrong version, unknown type, missing or
/// mistyped field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// What was wrong.
    pub msg: String,
}

impl FrameError {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.msg)
    }
}

impl std::error::Error for FrameError {}

fn check_version(v: &Value) -> Result<(), FrameError> {
    match v.get("v").and_then(Value::as_u64) {
        Some(PROTOCOL_VERSION) => Ok(()),
        Some(other) => Err(FrameError::new(format!(
            "unsupported protocol version {other} (this peer speaks {PROTOCOL_VERSION})"
        ))),
        None => Err(FrameError::new("missing `v`")),
    }
}

fn get_str(v: &Value, key: &str) -> Result<String, FrameError> {
    Ok(v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| FrameError::new(format!("missing or non-string `{key}`")))?
        .to_string())
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

/// What a submit request schedules: a registry scenario or an inline
/// network (+ optional hardware) spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A registry scenario id, e.g. `fig2@edge/b1`.
    Scenario(String),
    /// Inline spec text. The network is mandatory (`soma-network v1`
    /// document); the hardware (`soma-hardware v1` document) defaults to
    /// the `edge` preset when absent.
    Inline {
        /// Full `soma-network v1` document.
        network: String,
        /// Full `soma-hardware v1` document, if any.
        hardware: Option<String>,
    },
}

/// A scheduling request (`"type":"submit"`).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen correlation id, echoed on every response frame.
    pub id: String,
    /// What to schedule.
    pub target: Target,
    /// Seed portfolio (defaults to `[2025]` when empty).
    pub seeds: Vec<u64>,
    /// Optional effort override (default: `SearchConfig::default`).
    pub effort: Option<f64>,
    /// Stream `progress` frames while the search runs (default `true`).
    pub progress: bool,
    /// Optional deadline in milliseconds, measured by the server from
    /// frame receipt. A search still running at the deadline is
    /// cancelled cooperatively and the submit ends with a
    /// `deadline-exceeded` rejection. Cache hits always beat any
    /// deadline. `None` (the default) means no deadline.
    pub deadline_ms: Option<u64>,
}

impl SubmitRequest {
    /// A minimal submit for a registry scenario.
    pub fn scenario(id: impl Into<String>, scenario: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            target: Target::Scenario(scenario.into()),
            seeds: Vec::new(),
            effort: None,
            progress: true,
            deadline_ms: None,
        }
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Schedule something.
    Submit(SubmitRequest),
    /// Liveness/version probe.
    Ping,
    /// Server counters snapshot.
    Stats,
}

impl Request {
    /// Renders the request as its JSON frame.
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.push("v", PROTOCOL_VERSION.into());
        match self {
            Request::Submit(s) => {
                o.push("type", "submit".into());
                o.push("id", s.id.as_str().into());
                match &s.target {
                    Target::Scenario(id) => o.push("scenario", id.as_str().into()),
                    Target::Inline { network, hardware } => {
                        o.push("network", network.as_str().into());
                        if let Some(hw) = hardware {
                            o.push("hardware", hw.as_str().into());
                        }
                    }
                }
                if !s.seeds.is_empty() {
                    o.push("seeds", Value::Arr(s.seeds.iter().map(|&n| n.into()).collect()));
                }
                if let Some(e) = s.effort {
                    o.push("effort", e.into());
                }
                if !s.progress {
                    o.push("progress", false.into());
                }
                if let Some(d) = s.deadline_ms {
                    o.push("deadline_ms", d.into());
                }
            }
            Request::Ping => o.push("type", "ping".into()),
            Request::Stats => o.push("type", "stats".into()),
        }
        o
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on a version mismatch, unknown type, or missing or
    /// mistyped field.
    pub fn from_json(v: &Value) -> Result<Self, FrameError> {
        check_version(v)?;
        match get_str(v, "type")?.as_str() {
            "submit" => {
                let id = get_str(v, "id")?;
                let target = match (opt_str(v, "scenario"), opt_str(v, "network")) {
                    (Some(_), Some(_)) => {
                        return Err(FrameError::new(
                            "`scenario` and `network` are mutually exclusive",
                        ))
                    }
                    (Some(sc), None) => Target::Scenario(sc),
                    (None, Some(network)) => {
                        Target::Inline { network, hardware: opt_str(v, "hardware") }
                    }
                    (None, None) => {
                        return Err(FrameError::new("submit needs `scenario` or `network`"))
                    }
                };
                let seeds = match v.get("seeds") {
                    None => Vec::new(),
                    Some(s) => s
                        .as_arr()
                        .ok_or_else(|| FrameError::new("`seeds` is not an array"))?
                        .iter()
                        .map(|n| {
                            n.as_u64()
                                .ok_or_else(|| FrameError::new("`seeds` element is not an integer"))
                        })
                        .collect::<Result<_, _>>()?,
                };
                let effort = match v.get("effort") {
                    None => None,
                    Some(e) => Some(
                        e.as_f64().ok_or_else(|| FrameError::new("`effort` is not a number"))?,
                    ),
                };
                let progress = match v.get("progress") {
                    None => true,
                    Some(p) => {
                        p.as_bool().ok_or_else(|| FrameError::new("`progress` is not a bool"))?
                    }
                };
                let deadline_ms = match v.get("deadline_ms") {
                    None => None,
                    Some(d) => Some(
                        d.as_u64()
                            .ok_or_else(|| FrameError::new("`deadline_ms` is not an integer"))?,
                    ),
                };
                Ok(Request::Submit(SubmitRequest {
                    id,
                    target,
                    seeds,
                    effort,
                    progress,
                    deadline_ms,
                }))
            }
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            other => Err(FrameError::new(format!("unknown request type `{other}`"))),
        }
    }
}

/// Why the server refused a submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The in-flight request limit is reached; retry later.
    QueueFull,
    /// The request's estimated evaluation budget exceeds the server's
    /// per-request ceiling.
    BudgetExceeded,
    /// The request itself is invalid (unknown scenario, bad spec text).
    BadRequest,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// The request's `deadline_ms` expired before the search finished
    /// (or had already expired at admission). Unlike every other
    /// reason, this one may arrive *after* an `accepted` frame: the
    /// search was cancelled cooperatively and its partial work
    /// discarded.
    DeadlineExceeded,
}

impl RejectReason {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::BudgetExceeded => "budget-exceeded",
            RejectReason::BadRequest => "bad-request",
            RejectReason::ShuttingDown => "shutting-down",
            RejectReason::DeadlineExceeded => "deadline-exceeded",
        }
    }

    fn parse(s: &str) -> Result<Self, FrameError> {
        match s {
            "queue-full" => Ok(RejectReason::QueueFull),
            "budget-exceeded" => Ok(RejectReason::BudgetExceeded),
            "bad-request" => Ok(RejectReason::BadRequest),
            "shutting-down" => Ok(RejectReason::ShuttingDown),
            "deadline-exceeded" => Ok(RejectReason::DeadlineExceeded),
            other => Err(FrameError::new(format!("unknown reject reason `{other}`"))),
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A server counters snapshot (`"type":"stats"` response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Submits currently holding an admission permit.
    pub inflight: u64,
    /// Submits answered with a `result` frame (cached or fresh).
    pub served: u64,
    /// Of `served`, how many came straight from the ledger.
    pub cache_hits: u64,
    /// Submits refused with a `rejected` frame.
    pub rejected: u64,
    /// Rows currently in the ledger.
    pub ledger_rows: u64,
    /// Searches cancelled mid-flight (deadline expired or client
    /// disconnected) with their partial work discarded.
    pub cancelled: u64,
    /// Search panics caught and isolated (the connection survived).
    pub panics: u64,
    /// Corrupt ledger rows quarantined when the daemon loaded its
    /// ledger.
    pub quarantined: u64,
    /// Milliseconds since the daemon started accepting connections
    /// (gauge — monotonically increasing, resets on restart).
    pub uptime_ms: u64,
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submit passed admission; a `result` frame will follow.
    Accepted {
        /// Echo of the submit id.
        id: String,
        /// The request's ledger key (16 hex digits).
        hash: String,
        /// Whether the result will be served from the ledger.
        cached: bool,
    },
    /// The submit was refused; no further frames for this id.
    Rejected {
        /// Echo of the submit id.
        id: String,
        /// Typed reason.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
    /// A streamed search progress event.
    Progress {
        /// Echo of the submit id.
        id: String,
        /// The engine event.
        event: SearchEvent,
    },
    /// The submit's outcome — the final frame for its id.
    Result {
        /// Echo of the submit id.
        id: String,
        /// The ledger key the outcome is stored under.
        hash: String,
        /// Whether it came from the ledger without search work.
        cached: bool,
        /// The complete outcome (boxed: it dwarfs every other frame).
        outcome: Box<SearchOutcome>,
    },
    /// Answer to `ping`.
    Pong {
        /// Engine version (`soma_search::ENGINE_VERSION`).
        engine: String,
        /// Protocol version.
        protocol: u64,
    },
    /// Answer to `stats`.
    Stats(StatsSnapshot),
    /// The server could not parse a frame (connection-level; no id).
    Error {
        /// What was wrong.
        detail: String,
    },
}

impl Response {
    /// Renders the response as its JSON frame.
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.push("v", PROTOCOL_VERSION.into());
        match self {
            Response::Accepted { id, hash, cached } => {
                o.push("type", "accepted".into());
                o.push("id", id.as_str().into());
                o.push("hash", hash.as_str().into());
                o.push("cached", (*cached).into());
            }
            Response::Rejected { id, reason, detail } => {
                o.push("type", "rejected".into());
                o.push("id", id.as_str().into());
                o.push("reason", reason.as_str().into());
                o.push("detail", detail.as_str().into());
            }
            Response::Progress { id, event } => {
                o.push("type", "progress".into());
                o.push("id", id.as_str().into());
                o.push("event", event_to_json(event));
            }
            Response::Result { id, hash, cached, outcome } => {
                o.push("type", "result".into());
                o.push("id", id.as_str().into());
                o.push("hash", hash.as_str().into());
                o.push("cached", (*cached).into());
                o.push("outcome", outcome_to_json(outcome));
            }
            Response::Pong { engine, protocol } => {
                o.push("type", "pong".into());
                o.push("engine", engine.as_str().into());
                o.push("protocol", (*protocol).into());
            }
            Response::Stats(s) => {
                o.push("type", "stats".into());
                o.push("inflight", s.inflight.into());
                o.push("served", s.served.into());
                o.push("cache_hits", s.cache_hits.into());
                o.push("rejected", s.rejected.into());
                o.push("ledger_rows", s.ledger_rows.into());
                o.push("cancelled", s.cancelled.into());
                o.push("panics", s.panics.into());
                o.push("quarantined", s.quarantined.into());
                o.push("uptime_ms", s.uptime_ms.into());
            }
            Response::Error { detail } => {
                o.push("type", "error".into());
                o.push("detail", detail.as_str().into());
            }
        }
        o
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on a version mismatch, unknown type, or missing or
    /// mistyped field.
    pub fn from_json(v: &Value) -> Result<Self, FrameError> {
        check_version(v)?;
        let get_u64 = |key: &str| -> Result<u64, FrameError> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| FrameError::new(format!("missing or non-integer `{key}`")))
        };
        let get_bool = |key: &str| -> Result<bool, FrameError> {
            v.get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| FrameError::new(format!("missing or non-bool `{key}`")))
        };
        match get_str(v, "type")?.as_str() {
            "accepted" => Ok(Response::Accepted {
                id: get_str(v, "id")?,
                hash: get_str(v, "hash")?,
                cached: get_bool("cached")?,
            }),
            "rejected" => Ok(Response::Rejected {
                id: get_str(v, "id")?,
                reason: RejectReason::parse(&get_str(v, "reason")?)?,
                detail: get_str(v, "detail")?,
            }),
            "progress" => Ok(Response::Progress {
                id: get_str(v, "id")?,
                event: event_from_json(
                    v.get("event").ok_or_else(|| FrameError::new("missing `event`"))?,
                )
                .map_err(|e| FrameError::new(e.to_string()))?,
            }),
            "result" => Ok(Response::Result {
                id: get_str(v, "id")?,
                hash: get_str(v, "hash")?,
                cached: get_bool("cached")?,
                outcome: Box::new(
                    outcome_from_json(
                        v.get("outcome").ok_or_else(|| FrameError::new("missing `outcome`"))?,
                    )
                    .map_err(|e| FrameError::new(e.to_string()))?,
                ),
            }),
            "pong" => {
                Ok(Response::Pong { engine: get_str(v, "engine")?, protocol: get_u64("protocol")? })
            }
            "stats" => Ok(Response::Stats(StatsSnapshot {
                inflight: get_u64("inflight")?,
                served: get_u64("served")?,
                cache_hits: get_u64("cache_hits")?,
                rejected: get_u64("rejected")?,
                ledger_rows: get_u64("ledger_rows")?,
                // Additive v1 fields: absent when talking to an older
                // daemon, so default rather than reject.
                cancelled: v.get("cancelled").and_then(Value::as_u64).unwrap_or(0),
                panics: v.get("panics").and_then(Value::as_u64).unwrap_or(0),
                quarantined: v.get("quarantined").and_then(Value::as_u64).unwrap_or(0),
                uptime_ms: v.get("uptime_ms").and_then(Value::as_u64).unwrap_or(0),
            })),
            "error" => Ok(Response::Error { detail: get_str(v, "detail")? }),
            other => Err(FrameError::new(format!("unknown response type `{other}`"))),
        }
    }
}

/// Renders any frame value as its single wire line (no newline).
pub fn to_line(frame: &Value) -> String {
    json::to_string(frame)
}

/// Parses one wire line into a JSON value.
///
/// # Errors
///
/// [`FrameError`] on malformed JSON.
pub fn parse_line(line: &str) -> Result<Value, FrameError> {
    json::parse(line).map_err(|e| FrameError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let line = to_line(&req.to_json());
        assert!(!line.contains('\n'), "frames are single lines: {line}");
        let back = Request::from_json(&parse_line(&line).unwrap()).unwrap();
        assert_eq!(*req, back, "{line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Submit(SubmitRequest::scenario("r1", "fig2@edge/b1")));
        round_trip_request(&Request::Submit(SubmitRequest {
            id: "r2".into(),
            target: Target::Inline {
                network: "soma-network v1\nname x\nend\n".into(),
                hardware: Some("soma-hardware v1\npreset edge\nend\n".into()),
            },
            seeds: vec![1, 2, 3],
            effort: Some(0.02),
            progress: false,
            deadline_ms: Some(1500),
        }));
        round_trip_request(&Request::Submit(SubmitRequest {
            deadline_ms: Some(0),
            ..SubmitRequest::scenario("r3", "fig2@edge/b1")
        }));
    }

    #[test]
    fn responses_round_trip() {
        let frames = [
            Response::Accepted { id: "a".into(), hash: "00ff".into(), cached: true },
            Response::Rejected {
                id: "b".into(),
                reason: RejectReason::QueueFull,
                detail: "8 in flight".into(),
            },
            Response::Progress {
                id: "c".into(),
                event: SearchEvent::NewBest { round: 1, cost: 0.5, latency_cycles: 10 },
            },
            Response::Pong { engine: "soma-engine-1".into(), protocol: PROTOCOL_VERSION },
            Response::Stats(StatsSnapshot {
                inflight: 1,
                served: 2,
                cache_hits: 1,
                rejected: 3,
                ledger_rows: 4,
                cancelled: 5,
                panics: 6,
                quarantined: 7,
                uptime_ms: 8,
            }),
            Response::Error { detail: "bad json".into() },
        ];
        for frame in &frames {
            let line = to_line(&frame.to_json());
            let back = Response::from_json(&parse_line(&line).unwrap()).unwrap();
            assert_eq!(*frame, back, "{line}");
        }
    }

    #[test]
    fn every_reject_reason_round_trips_its_token() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::BudgetExceeded,
            RejectReason::BadRequest,
            RejectReason::ShuttingDown,
            RejectReason::DeadlineExceeded,
        ] {
            assert_eq!(RejectReason::parse(reason.as_str()).unwrap(), reason);
        }
        assert!(RejectReason::parse("because").is_err());
    }

    #[test]
    fn version_mismatch_is_refused_not_guessed() {
        let e =
            Request::from_json(&parse_line("{\"v\":2,\"type\":\"ping\"}").unwrap()).unwrap_err();
        assert!(e.to_string().contains("unsupported protocol version 2"), "{e}");
        assert!(Request::from_json(&parse_line("{\"type\":\"ping\"}").unwrap()).is_err());
    }

    #[test]
    fn submit_validation_catches_shape_errors() {
        let bad = |text: &str| Request::from_json(&parse_line(text).unwrap()).unwrap_err();
        let e = bad("{\"v\":1,\"type\":\"submit\",\"id\":\"x\"}");
        assert!(e.to_string().contains("`scenario` or `network`"), "{e}");
        let e =
            bad("{\"v\":1,\"type\":\"submit\",\"id\":\"x\",\"scenario\":\"s\",\"network\":\"n\"}");
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
        let e = bad("{\"v\":1,\"type\":\"submit\",\"id\":\"x\",\"scenario\":\"s\",\"seeds\":[-1]}");
        assert!(e.to_string().contains("`seeds` element"), "{e}");
        assert!(bad("{\"v\":1,\"type\":\"warp\"}").to_string().contains("unknown request type"));
        let e = bad(
            "{\"v\":1,\"type\":\"submit\",\"id\":\"x\",\"scenario\":\"s\",\"deadline_ms\":\"soon\"}",
        );
        assert!(e.to_string().contains("`deadline_ms`"), "{e}");
    }

    #[test]
    fn stats_failure_counters_default_to_zero_when_absent() {
        // A pre-chaos daemon omits the failure counters; the client
        // reads zeros instead of rejecting the frame.
        let line = "{\"v\":1,\"type\":\"stats\",\"inflight\":0,\"served\":9,\
                    \"cache_hits\":4,\"rejected\":1,\"ledger_rows\":5}";
        let Response::Stats(s) = Response::from_json(&parse_line(line).unwrap()).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!((s.cancelled, s.panics, s.quarantined, s.uptime_ms), (0, 0, 0, 0));
        assert_eq!(s.served, 9);
    }
}
