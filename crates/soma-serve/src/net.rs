//! Transport plumbing: one [`Listen`] address type over both socket
//! families, plus internal listener/stream enums so the server and
//! client code is transport-agnostic.
//!
//! Addresses render and parse as `unix:<path>` or `tcp:<host>:<port>`
//! (a bare `<host>:<port>` is accepted as TCP for convenience); that
//! string is the `--listen` flag's whole grammar.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

/// A serve endpoint: where the daemon listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// TCP, as a `host:port` string (port `0` = kernel-assigned; the
    /// bound [`ServerHandle`](crate::ServerHandle) reports the real
    /// port).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for Listen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Listen::Tcp(addr) => write!(f, "tcp:{addr}"),
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl FromStr for Listen {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp:").unwrap_or(s);
        if let Some((host, port)) = addr.rsplit_once(':') {
            if !host.is_empty() && port.parse::<u16>().is_ok() {
                return Ok(Listen::Tcp(addr.to_string()));
            }
        }
        Err(format!("invalid listen address `{s}`: expected `unix:<path>` or `tcp:<host>:<port>`"))
    }
}

/// A bound listening socket of either family.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds `listen`, returning the listener plus the *resolved*
    /// address (TCP port `0` replaced by the kernel's pick). A stale
    /// unix socket file from a previous run is removed first.
    pub fn bind(listen: &Listen) -> io::Result<(Self, Listen)> {
        match listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let resolved = Listen::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), resolved))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), Listen::Unix(path.clone())))
            }
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection, returned in blocking mode (accepted
    /// sockets must not inherit the listener's nonblocking flag).
    pub fn accept(&self) -> io::Result<Stream> {
        let stream = match self {
            Listener::Tcp(l) => Stream::Tcp(l.accept()?.0),
            #[cfg(unix)]
            Listener::Unix(l) => Stream::Unix(l.accept()?.0),
        };
        stream.set_nonblocking(false)?;
        Ok(stream)
    }
}

/// One connected socket of either family.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub fn connect(listen: &Listen) -> io::Result<Self> {
        match listen {
            Listen::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr.as_str())?)),
            #[cfg(unix)]
            Listen::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_addresses_parse_and_round_trip() {
        let unix: Listen = "unix:/tmp/soma.sock".parse().unwrap();
        assert_eq!(unix, Listen::Unix(PathBuf::from("/tmp/soma.sock")));
        assert_eq!(unix.to_string().parse::<Listen>().unwrap(), unix);

        let tcp: Listen = "tcp:127.0.0.1:7777".parse().unwrap();
        assert_eq!(tcp, Listen::Tcp("127.0.0.1:7777".into()));
        assert_eq!(tcp.to_string().parse::<Listen>().unwrap(), tcp);

        // Bare host:port is TCP shorthand.
        assert_eq!("127.0.0.1:0".parse::<Listen>().unwrap(), Listen::Tcp("127.0.0.1:0".into()));
    }

    #[test]
    fn junk_listen_addresses_are_rejected() {
        for junk in ["", "unix:", "localhost", "http://x"] {
            let err = junk.parse::<Listen>();
            assert!(err.is_err(), "{junk:?} must not parse");
        }
    }
}
