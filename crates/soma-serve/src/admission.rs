//! Admission control: a bounded in-flight permit counter plus a
//! per-request evaluation-budget ceiling.
//!
//! The daemon refuses work it cannot absorb instead of queueing it
//! invisibly: a submit either takes a [`Permit`] immediately or is
//! answered with a typed [`RejectReason`] the client can act on
//! (back off on `queue-full`, shrink the request on `budget-exceeded`).
//! Permits release on drop, so every exit path — success, search panic
//! unwinding, connection teardown — returns its slot.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use soma_search::SearchConfig;

use crate::protocol::RejectReason;

/// Coarse upper estimate of the schedule evaluations one submit can
/// trigger: `seeds × allocator rounds × (stage-1 + stage-2 iterations)`.
///
/// Stage-2 iteration counts scale with the DRAM tensor count, which is
/// only known mid-search; `layers` is the conservative stand-in (every
/// layer contributes at least one DRAM tensor candidate). The estimate
/// deliberately over-counts — admission is a guard rail against
/// runaway requests, not an accounting system.
pub fn estimate_evals(cfg: &SearchConfig, layers: usize, n_seeds: usize) -> u64 {
    let per_round = cfg.stage1_iters(layers).saturating_add(cfg.stage2_iters(layers));
    (n_seeds as u64).saturating_mul(cfg.max_allocator_iters as u64).saturating_mul(per_round)
}

/// The server's admission state: how many submits may run at once and
/// how big any single one may be.
#[derive(Debug)]
pub struct Admission {
    max_inflight: usize,
    max_evals: u64,
    inflight: AtomicUsize,
    rejected: AtomicU64,
}

impl Admission {
    /// A policy admitting at most `max_inflight` concurrent submits of
    /// at most `max_evals` estimated evaluations each (`0` = unlimited
    /// budget).
    pub fn new(max_inflight: usize, max_evals: u64) -> Self {
        Self {
            max_inflight: max_inflight.max(1),
            max_evals,
            inflight: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Submits currently holding a permit.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Total admissions refused so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }

    /// The per-request evaluation ceiling (`0` = unlimited).
    pub fn max_evals(&self) -> u64 {
        self.max_evals
    }

    /// Tries to admit a submit with the given evaluation estimate.
    ///
    /// # Errors
    ///
    /// [`RejectReason::BudgetExceeded`] when the estimate tops the
    /// per-request ceiling, [`RejectReason::QueueFull`] when every
    /// in-flight slot is taken.
    pub fn admit(&self, estimated_evals: u64) -> Result<Permit<'_>, RejectReason> {
        if self.max_evals > 0 && estimated_evals > self.max_evals {
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(RejectReason::BudgetExceeded);
        }
        // Optimistically take a slot; back out if it overshot the cap.
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(RejectReason::QueueFull);
        }
        Ok(Permit { admission: self })
    }
}

/// An admitted submit's slot; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let adm = Admission::new(2, 0);
        let a = adm.admit(1).unwrap();
        let b = adm.admit(1).unwrap();
        assert_eq!(adm.inflight(), 2);
        assert_eq!(adm.admit(1).unwrap_err(), RejectReason::QueueFull);
        assert_eq!(adm.rejected(), 1);
        drop(a);
        let c = adm.admit(1).unwrap();
        assert_eq!(adm.inflight(), 2);
        drop((b, c));
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn budget_ceiling_rejects_oversized_requests() {
        let adm = Admission::new(8, 1000);
        assert_eq!(adm.admit(1001).unwrap_err(), RejectReason::BudgetExceeded);
        assert!(adm.admit(1000).is_ok());
        // 0 disables the ceiling entirely.
        let open = Admission::new(8, 0);
        assert!(open.admit(u64::MAX).is_ok());
    }

    #[test]
    fn estimate_scales_with_every_input() {
        let cfg = SearchConfig { effort: 0.1, ..SearchConfig::default() };
        let base = estimate_evals(&cfg, 10, 1);
        assert!(base > 0);
        assert!(estimate_evals(&cfg, 10, 2) == 2 * base, "seeds multiply");
        assert!(estimate_evals(&cfg, 100, 1) > base, "layers grow the per-round cost");
        let lazy = SearchConfig { max_allocator_iters: 1, ..cfg.clone() };
        assert!(estimate_evals(&lazy, 10, 1) < base, "fewer rounds shrink it");
    }
}
