//! Process-wide graceful-stop flag and minimal signal plumbing.
//!
//! Both long-running binaries (`lab` and `serve`) stop the same way: a
//! SIGINT/SIGTERM handler flips one global [`AtomicBool`] and the work
//! loops poll it at their natural cell/request boundaries — no partial
//! writes, no torn ledgers, exit code 0. The handler does nothing but
//! the (async-signal-safe) atomic store; everything interesting happens
//! on ordinary threads.
//!
//! The signal registration is a direct `signal(2)` FFI call rather than
//! a `libc` dependency: this workspace vendors every third-party crate,
//! and two constants plus one extern function do not justify a vendor
//! tree. glibc's `signal()` installs BSD semantics (`SA_RESTART`), so
//! blocking accepts/reads are *restarted* after the handler runs —
//! which is why the server polls the flag with nonblocking accepts and
//! read timeouts instead of waiting for an `EINTR` that may never
//! surface.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide stop flag.
static STOP: AtomicBool = AtomicBool::new(false);

/// The flag itself, for APIs that take `&AtomicBool` (e.g.
/// `run_lab_until`).
pub fn stop_flag() -> &'static AtomicBool {
    &STOP
}

/// Whether a stop has been requested.
pub fn stop_requested() -> bool {
    STOP.load(Ordering::SeqCst)
}

/// Requests a stop programmatically (what the signal handler does).
pub fn request_stop() {
    STOP.store(true, Ordering::SeqCst);
}

/// Clears the flag — test-only affordance so independent test servers
/// in one process do not observe each other's stops.
pub fn reset_stop_for_tests() {
    STOP.store(false, Ordering::SeqCst);
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    STOP.store(true, Ordering::SeqCst);
}

/// Routes SIGINT and SIGTERM to the stop flag. Idempotent; call once at
/// binary start-up. On non-unix targets this is a no-op (the flag can
/// still be raised programmatically).
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        type Handler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: Handler) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_stop_for_tests();
        assert!(!stop_requested());
        request_stop();
        assert!(stop_requested());
        assert!(stop_flag().load(Ordering::SeqCst));
        reset_stop_for_tests();
        assert!(!stop_requested());
    }
}
