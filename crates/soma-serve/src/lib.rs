//! Scheduling-as-a-service: a long-running daemon that answers SoMa
//! scheduling requests over line-delimited JSON.
//!
//! The experiment harness runs searches batch-style (`soma-bench --bin
//! lab`); this crate turns the same engine into a **service**: clients
//! connect over TCP or a unix-domain socket, name a registry scenario
//! (or send inline `soma-network v1`/`soma-hardware v1` spec text),
//! and stream back typed progress events followed by the complete
//! [`SearchOutcome`](soma_search::SearchOutcome). Everything is built on
//! `std::net` threads — no async runtime, matching the workspace's
//! no-external-dependency rule.
//!
//! Three properties carry the design:
//!
//! * **Admission control, not invisible queueing** ([`admission`]) — a
//!   submit either starts immediately or is refused with a typed
//!   [`RejectReason`](protocol::RejectReason) (`queue-full`,
//!   `budget-exceeded`, `bad-request`, `shutting-down`) the client can
//!   act on. The budget check is a coarse upfront estimate of schedule
//!   evaluations, so an oversized request is refused before it burns a
//!   core for minutes.
//! * **The ledger is the cache** ([`soma_spec::ledger`]) — results are
//!   keyed by the same content hash the lab orchestrator uses; a repeat
//!   request is answered bit-identically from disk with `cached: true`
//!   and zero search work, and every fresh result is flushed to the
//!   ledger *before* the result frame goes out, so the cache grows
//!   across requests and daemon restarts — and a ledger warmed by `lab`
//!   serves the daemon, and vice versa.
//! * **Graceful shutdown** ([`shutdown`]) — SIGINT/SIGTERM flip one
//!   atomic flag; accept and connection loops poll it between frames,
//!   in-flight searches finish and flush, new submits get
//!   `shutting-down`, and the process exits 0 with a clean,
//!   replayable ledger.
//!
//! The wire protocol (one JSON object per line, versioned with
//! [`PROTOCOL_VERSION`]) is specified in `specs/PROTOCOL.md`; the
//! binaries live in `soma-bench` (`--bin serve`, `--bin loadgen`)
//! because that crate owns the workspace's only environment-variable
//! access.
//!
//! ```no_run
//! use soma_serve::{start, Client, Listen, ServerConfig, SubmitRequest};
//!
//! let handle = start(ServerConfig::new(
//!     "tcp:127.0.0.1:0".parse::<Listen>().unwrap(),
//!     "runs/serve.jsonl",
//! ))
//! .unwrap();
//! let mut client = Client::connect(handle.listen()).unwrap();
//! let sub = client.submit(SubmitRequest::scenario("r1", "fig2@edge/b1")).unwrap();
//! assert!(sub.succeeded());
//! handle.shutdown();
//! ```

pub mod admission;
pub mod client;
pub mod net;
pub mod protocol;
pub mod server;
pub mod shutdown;

pub use admission::{estimate_evals, Admission};
pub use client::{Client, ClientError, RetryPolicy, Submission};
pub use net::Listen;
pub use protocol::{
    FrameError, RejectReason, Request, Response, StatsSnapshot, SubmitRequest, Target,
};
pub use server::{start, ServerConfig, ServerHandle};

/// Version of the line-delimited JSON protocol. Every frame carries it
/// as `"v"`; peers refuse frames from a newer protocol instead of
/// guessing. Additive changes (new optional fields, new frame types)
/// keep the version; removing or re-typing anything bumps it.
pub const PROTOCOL_VERSION: u64 = 1;
